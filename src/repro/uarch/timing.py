"""One-pass trace-driven timing model of the baseline out-of-order machine.

The simulator makes a single in-order pass over the functional trace,
accounting cycles with the first-order structures the paper's evaluation
depends on:

* a fetch engine with the Table 2 rules (8-wide, at most 3 conditional
  branches per cycle, fetch ends at the first predicted-taken branch,
  I-cache misses stall fetch, BTB misses on taken transfers cost a bubble);
* a dependence scoreboard: each instruction completes at
  ``max(fetch + pipeline_depth, sources ready) + latency``, with load
  latency from the cache hierarchy and the predicate-aware store buffer;
* in-order retirement bounded by ``retire_width``, with a reorder-buffer
  ring that stalls fetch when the window fills;
* full misprediction modelling: on a mispredicted branch the front end
  keeps fetching down the *wrong* path (a predictor-guided walk of the
  static CFG) until the branch resolves, classifying wrong-path fetches as
  control-dependent or control-independent against the branch's
  reconvergence point (Figure 1), then flushes and refetches.

Policies: this base class implements ``baseline`` and ``dualpath``
(selective dual-path execution).  The dynamic-predication policies (DMP
and DHP) live in :class:`repro.core.dpred.PredicationAwareSimulator`,
which subclasses this and overrides :meth:`_maybe_enter_dpred`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.branch import make_predictor
from repro.branch.btb import BranchTargetBuffer
from repro.branch.perfect import PerfectPredictor
from repro.branch.ras import ReturnAddressStack
from repro.confidence import make_estimator
from repro.confidence.perfect import PerfectConfidenceEstimator
from repro.cfg.analysis import ProgramAnalysis
from repro.isa.encoding import HintTable
from repro.isa.instructions import Instruction, Opcode
from repro.isa.registers import NUM_ARCH_REGS
from repro.memsys.hierarchy import CacheHierarchy, MainMemory
from repro.program.program import Program
from repro.program.trace import Trace
from repro.uarch.config import MachineConfig
from repro.uarch.frontend import StaticWalker, TraceCursor
from repro.uarch.plan import (
    KIND_LOAD,
    TERM_BR,
    TERM_CALL,
    TERM_JMP,
    TERM_NONE,
    TERM_RET,
)
from repro.uarch.rat import RegisterAliasTable
from repro.uarch.stats import SimStats
from repro.uarch.storebuffer import ForwardDecision, StoreBuffer


class BranchContext:
    """Everything known about an on-trace conditional branch at fetch."""

    __slots__ = (
        "instr",
        "record",
        "prediction",
        "actual",
        "resolution",
        "history_snapshot",
    )

    def __init__(self, instr, record, prediction, actual, resolution,
                 history_snapshot):
        self.instr = instr
        self.record = record
        self.prediction = prediction
        self.actual = actual
        self.resolution = resolution
        self.history_snapshot = history_snapshot

    @property
    def mispredicted(self) -> bool:
        return self.prediction.taken != self.actual


class TimingSimulator:
    """Drives one benchmark trace through one machine configuration."""

    def __init__(
        self,
        program: Program,
        trace: Trace,
        config: MachineConfig = None,
        hints: Optional[HintTable] = None,
        benchmark: str = "",
        warm_words=None,
        tracer=None,
    ) -> None:
        self.program = program
        self.trace = trace
        self.config = config or MachineConfig()
        self.hints = hints or HintTable()
        # Observability (docs/observability.md).  The tracer is duck-typed
        # and injected by the caller — the simulator never imports
        # repro.obs — and every hook site below is a single ``is None``
        # test when tracing is off.
        self.tracer = tracer
        self.stats = SimStats(
            benchmark=benchmark or trace.program_name,
            config_description=self.config.describe(),
        )
        # Predictors and estimators
        self.predictor = make_predictor(
            self.config.predictor_kind, **self.config.predictor_args
        )
        self.confidence = make_estimator(
            self.config.confidence_kind, **self.config.confidence_args
        )
        self.btb = BranchTargetBuffer(self.config.btb_entries)
        self.ras = ReturnAddressStack(self.config.ras_depth)
        # Oracle components need per-branch hand-feeding; predictors are
        # never swapped after construction, so test once here instead of
        # isinstance-checking on every branch.
        self._predictor_is_perfect = isinstance(self.predictor, PerfectPredictor)
        self._confidence_is_perfect = isinstance(
            self.confidence, PerfectConfidenceEstimator
        )
        self._is_dualpath = self.config.mode == "dualpath"
        if tracer is not None:
            tracer.machine(
                mode=self.config.mode,
                engine=self.config.engine,
                benchmark=self.stats.benchmark,
                predictor=self.config.predictor_kind,
                confidence=self.confidence.describe(),
            )
        # Memory system
        self.hierarchy = CacheHierarchy(
            memory=MainMemory(latency=self.config.memory_latency),
            prefetch_lines=self.config.prefetch_lines,
        )
        if warm_words is not None:
            # Pre-load the benchmark's initialized data into the L2: SPEC
            # working sets are largely cache-resident after warmup, and the
            # paper's runs skip initialization.  Footprints larger than the
            # L2 (the pointer-chasing benchmarks) still miss by capacity.
            for address in warm_words:
                self.hierarchy.l2.access(address)
            self.hierarchy.l2.hits = 0
            self.hierarchy.l2.misses = 0
        # Renaming / dependence state
        self.rat = RegisterAliasTable()
        self.reg_ready: List[int] = [0] * NUM_ARCH_REGS
        self.store_buffer = StoreBuffer(self.config.store_buffer_size)
        # Invariant configuration, hoisted out of the per-instruction
        # loops (the config is frozen for the lifetime of a simulator).
        self._pipeline_depth = self.config.pipeline_depth
        self._fetch_width = self.config.fetch_width
        self._half_width = max(1, self.config.fetch_width // 2)
        self._max_branches = self.config.max_branches_per_cycle
        self._retire_width = self.config.retire_width
        self._rob_size = self.config.rob_size
        # Fetch state
        self.cycle = 0
        self.slots = self.config.fetch_width
        self.branches_left = self.config.max_branches_per_cycle
        self.seq = 0  # dispatch sequence number (ROB allocation order)
        # Retirement state
        self.retire_ring = [0] * self.config.rob_size
        self.last_retire_cycle = 0
        self.retire_count = 0
        # Dual-path state
        self.dual_until = -1
        # Architectural call context at the current fetch point: the
        # static walkers seed their shadow return-address stacks from it so
        # wrong paths can flow through RETs the way a real RAS allows.
        self.call_context: List[Tuple[str, str]] = []
        # Derived structures, shared by every simulator of this program
        # (postdominators, reconvergence PCs, decoded block plans).
        self.analysis = ProgramAnalysis.of(program)
        self._trace_pcs: Optional[Tuple[int, ...]] = None
        # Engine selection: the fast engine rebinds the hot inner loops
        # to their pre-decoded block-plan implementations; "reference"
        # keeps the original per-instruction loops for differential
        # checking (both produce bit-identical SimStats).
        if self.config.engine == "fast":
            self._fetch_trace_block = self._fetch_trace_block_fast
            self._walk_wrong_path = self._walk_wrong_path_fast
            self._handle_trace_branch = self._handle_trace_branch_fast
        # Robustness instrumentation (docs/robustness.md).  Imported
        # lazily: the validation package pulls in the fault harness,
        # which must not load during ordinary simulator imports.
        self._dpred_depth = 0
        if self.config.oracle_checks:
            from repro.validation.oracle import OracleChecker

            self.oracle: Optional[OracleChecker] = OracleChecker(
                self.trace, self.stats
            )
        else:
            self.oracle = None
        if self.config.watchdog:
            from repro.validation.watchdog import Watchdog

            self.watchdog: Optional[Watchdog] = Watchdog(self)
        else:
            self.watchdog = None

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def run(self) -> SimStats:
        if self.config.engine == "fast":
            return self._run_fast()
        cursor = TraceCursor(self.trace)
        oracle = self.oracle
        watchdog = self.watchdog
        while not cursor.exhausted:
            before = cursor.index
            record = cursor.record
            block = record.block
            self._icache_fetch(block.first_pc)
            terminator = block.terminator
            if terminator is not None and terminator.opcode == Opcode.BR:
                self._fetch_trace_block(record, skip_terminator=True)
                self._handle_trace_branch(cursor, record)
            else:
                self._fetch_trace_block(record)
                self._handle_nonbranch_transfer(block)
                cursor.advance()
            if oracle is not None:
                oracle.note_advance(before, cursor.index)
            if watchdog is not None:
                watchdog.check(self, where="main-fetch", pc=block.first_pc)
        self.stats.cycles = max(self.last_retire_cycle, self.cycle)
        self.stats.retired_instructions = self.trace.instruction_count
        if oracle is not None:
            oracle.finalize(self.stats, self.trace)
        if self.tracer is not None:
            self.tracer.finish(self.stats)
        return self.stats

    def _run_fast(self) -> SimStats:
        """The ``run`` loop over pre-decoded block plans.

        Same structure, same call sequence into every stateful component
        (caches, predictors, store buffer, oracle, watchdog) as the
        reference loop above — only the static-fact lookups differ."""
        cursor = TraceCursor(self.trace)
        records = self.trace.records
        n_records = len(records)
        oracle = self.oracle
        watchdog = self.watchdog
        block_plan = self.analysis.block_plan
        fetch_trace_block = self._fetch_trace_block
        inst_access = self.hierarchy.inst_access
        l1i_latency = self.hierarchy.l1i.latency
        while cursor.index < n_records:
            before = cursor.index
            record = records[before]
            block = record.block
            plan = block._plan
            if plan is None:
                plan = block_plan(block, record.function)
            first_pc = plan.first_pc
            # _icache_fetch, inlined (the hit path adds no cycles).
            extra = inst_access(first_pc // 8) - l1i_latency
            if extra > 0:
                self._advance_fetch_cycle(self.cycle + extra)
            if plan.term_kind == TERM_BR:
                fetch_trace_block(record, skip_terminator=True)
                self._handle_trace_branch(cursor, record)
            else:
                fetch_trace_block(record)
                self._transfer_fast(plan)
                cursor.index = before + 1
            if oracle is not None:
                oracle.note_advance(before, cursor.index)
            if watchdog is not None:
                watchdog.check(self, where="main-fetch", pc=first_pc)
        self.stats.cycles = max(self.last_retire_cycle, self.cycle)
        self.stats.retired_instructions = self.trace.instruction_count
        if oracle is not None:
            oracle.finalize(self.stats, self.trace)
        if self.tracer is not None:
            self.tracer.finish(self.stats)
        return self.stats

    # ------------------------------------------------------------------
    # Fetch engine
    # ------------------------------------------------------------------

    def _advance_fetch_cycle(self, to_cycle: Optional[int] = None) -> None:
        if to_cycle is None:
            self.cycle += 1
        else:
            self.cycle = max(self.cycle + 1, to_cycle)
        self.slots = (
            self._half_width
            if self.cycle <= self.dual_until
            else self._fetch_width
        )
        self.branches_left = self._max_branches

    def _fetch_slot(self, is_cond_branch: bool, occupies_rob: bool = True) -> int:
        """Allocate one fetch slot, advancing the fetch cycle as required.

        Returns the fetch cycle.  ``occupies_rob`` gates the window-full
        stall (wrong-path instructions are squashed before they can block
        the window for long, so their walk skips the check)."""
        if occupies_rob and self.seq >= self._rob_size:
            oldest_retire = self.retire_ring[self.seq % self._rob_size]
            if self.cycle < oldest_retire:
                self._advance_fetch_cycle(oldest_retire)
        if self.slots <= 0 or (is_cond_branch and self.branches_left <= 0):
            self._advance_fetch_cycle()
        self.slots -= 1
        if is_cond_branch:
            self.branches_left -= 1
        return self.cycle

    def _icache_fetch(self, pc: int) -> None:
        latency = self.hierarchy.inst_access(pc // 8)
        extra = latency - self.hierarchy.l1i.latency
        if extra > 0:
            self._advance_fetch_cycle(self.cycle + extra)

    def _taken_redirect(self, pc: int, target_pc: int) -> None:
        """A predicted-taken transfer ends the fetch cycle; a BTB miss adds
        a bubble while the target is computed."""
        if self.btb.lookup(pc) != target_pc:
            self.btb.insert(pc, target_pc)
            self._advance_fetch_cycle()  # bubble
        if self.config.fetch_stops_at_taken:
            self._advance_fetch_cycle()

    # ------------------------------------------------------------------
    # Execution / retirement accounting
    # ------------------------------------------------------------------

    def _sources_ready(self, instr: Instruction) -> int:
        ready = 0
        for src in instr.srcs:
            if self.reg_ready[src] > ready:
                ready = self.reg_ready[src]
        return ready

    def _retire(self, completion: int) -> int:
        cycle = completion + 1
        if cycle < self.last_retire_cycle:
            cycle = self.last_retire_cycle
        if cycle == self.last_retire_cycle:
            if self.retire_count >= self._retire_width:
                cycle += 1
                self.retire_count = 0
        else:
            self.retire_count = 0
        self.last_retire_cycle = cycle
        self.retire_count += 1
        self.retire_ring[self.seq % self._rob_size] = cycle
        self.seq += 1
        return cycle

    def _dispatch_uop(self, sources_ready: int, latency: int = 1) -> int:
        """Account one front-end-inserted uop.  Returns its completion.

        Uops consume no fetch slot, and deliberately no reorder-buffer ring
        slot either: dynamic-predication bookkeeping is checkpoint-based
        and predicated-FALSE work frees its resources the moment the
        predicate resolves (Section 2.5), while this trace-driven model
        cannot credit the matching MLP *benefit* DMP gets from not
        flushing in-flight control-independent loads (wrong-path loads
        carry no addresses here).  Charging the occupancy without the
        benefit would double-penalize predication — see DESIGN.md."""
        completion = max(self.cycle + self._pipeline_depth,
                         sources_ready) + latency
        return completion

    # ------------------------------------------------------------------
    # On-trace block fetch
    # ------------------------------------------------------------------

    def _fetch_trace_block(
        self,
        record,
        skip_terminator: bool = False,
        predicate_id: Optional[int] = None,
        predicate_is_false: bool = False,
        predicate_ready: Optional[int] = None,
    ) -> int:
        """Fetch, execute and retire one on-trace block's instructions.

        Returns the completion cycle of the last fetched instruction.
        When ``skip_terminator`` is set the terminating branch is *not*
        processed here (the caller predicts it first and then calls
        :meth:`_fetch_branch_instruction`)."""
        block = record.block
        instructions = block.instructions
        if skip_terminator:
            instructions = instructions[:-1]
        mem_addrs = record.mem_addrs
        mem_pos = 0
        last_completion = 0
        depth = self._pipeline_depth
        for instr in instructions:
            fetch_cycle = self._fetch_slot(instr.is_cond_branch)
            self.stats.fetched_correct += 1
            base = max(fetch_cycle + depth, self._sources_ready(instr))
            if instr.is_load:
                address = mem_addrs[mem_pos]
                mem_pos += 1
                completion = self._execute_load(
                    instr, address, base, predicate_id
                )
            elif instr.is_store:
                completion = base + 1
                address = mem_addrs[mem_pos]
                mem_pos += 1
                self.store_buffer.insert(
                    address,
                    self.seq,
                    completion,
                    predicate_id=predicate_id,
                    predicate_ready_cycle=predicate_ready,
                    predicate_value=(
                        None if predicate_id is None else not predicate_is_false
                    ),
                )
            else:
                completion = base + instr.latency
            if instr.writes_register:
                self.rat.rename_dest(instr.dest)
                self.reg_ready[instr.dest] = completion
            self._retire(completion)
            self.stats.executed_instructions += 1
            if predicate_is_false:
                self.stats.predicated_false_instructions += 1
            last_completion = completion
        return last_completion

    def _fetch_trace_block_fast(
        self,
        record,
        skip_terminator: bool = False,
        predicate_id: Optional[int] = None,
        predicate_is_false: bool = False,
        predicate_ready: Optional[int] = None,
    ) -> int:
        """:meth:`_fetch_trace_block` over the block's pre-decoded plan.

        Identical arithmetic and identical call sequence into every
        stateful component (store buffer, cache hierarchy, RAT); the
        fetch/retire bookkeeping runs on locals and is written back once
        at the end, and the per-instruction stats increments are batched
        into per-block adds."""
        block = record.block
        plan = block._plan
        if plan is None:
            plan = self.analysis.block_plan(block, record.function)
        rows = plan.body_rows if skip_terminator else plan.rows
        if not rows:
            return 0
        # Hot state, bound to locals for the duration of the block.
        cycle = self.cycle
        slots = self.slots
        branches_left = self.branches_left
        seq = self.seq
        last_retire = self.last_retire_cycle
        retire_count = self.retire_count
        dual_until = self.dual_until
        retire_ring = self.retire_ring
        reg_ready = self.reg_ready
        depth = self._pipeline_depth
        rob_size = self._rob_size
        fetch_width = self._fetch_width
        half_width = self._half_width
        max_branches = self._max_branches
        retire_width = self._retire_width
        # rat.rename_dest, inlined: nothing inside a block fetch rebinds
        # the RAT's lists (only dpred control code between blocks does),
        # so the list references stay valid for the whole loop.
        rat = self.rat
        rat_mapping = rat._mapping
        rat_modified = rat._modified
        next_tag = rat._next_tag
        sb_lookup = self.store_buffer.lookup
        sb_insert = self.store_buffer.insert
        data_access = self.hierarchy.data_access
        l1d_latency = self.hierarchy.l1d.latency
        forward_code = ForwardDecision.FORWARD
        wait_code = ForwardDecision.WAIT
        mem_addrs = record.mem_addrs
        mem_pos = 0
        pred_value = None if predicate_id is None else not predicate_is_false
        load_waits = 0
        completion = 0
        # seq advances by one per row, so the ROB ring position does too.
        ring_pos = seq % rob_size
        for cond, kind, latency, _lat1, dest, srcs in rows:
            # _fetch_slot, inlined.
            if seq >= rob_size:
                oldest = retire_ring[ring_pos]
                if cycle < oldest:
                    cycle = cycle + 1 if cycle >= oldest else oldest
                    slots = (
                        half_width if cycle <= dual_until else fetch_width
                    )
                    branches_left = max_branches
            if cond:
                if slots <= 0 or branches_left <= 0:
                    cycle += 1
                    slots = (
                        half_width if cycle <= dual_until else fetch_width
                    )
                    branches_left = max_branches
                branches_left -= 1
            elif slots <= 0:
                cycle += 1
                slots = half_width if cycle <= dual_until else fetch_width
                branches_left = max_branches
            slots -= 1
            # _sources_ready, inlined.
            base = cycle + depth
            for src in srcs:
                ready = reg_ready[src]
                if ready > base:
                    base = ready
            if kind == 0:  # KIND_ALU
                completion = base + latency
            elif kind == KIND_LOAD:
                address = mem_addrs[mem_pos]
                mem_pos += 1
                # _execute_load, inlined.
                forward = sb_lookup(
                    address, seq, predicate_id, current_cycle=base
                )
                decision = forward.decision
                if decision == forward_code:
                    ready = forward.entry.data_ready_cycle
                    completion = (ready if ready > base else base) + 1
                elif decision == wait_code:
                    load_waits += 1
                    ready = forward.wait_until
                    completion = (
                        ready if ready > base else base
                    ) + l1d_latency
                else:
                    completion = base + data_access(address)
            else:  # KIND_STORE
                completion = base + 1
                address = mem_addrs[mem_pos]
                mem_pos += 1
                sb_insert(
                    address,
                    seq,
                    completion,
                    predicate_id=predicate_id,
                    predicate_ready_cycle=predicate_ready,
                    predicate_value=pred_value,
                )
            if dest >= 0:
                rat_mapping[dest] = next_tag
                rat_modified[dest] = True
                next_tag += 1
                reg_ready[dest] = completion
            # _retire, inlined.
            rcycle = completion + 1
            if rcycle < last_retire:
                rcycle = last_retire
            if rcycle == last_retire:
                if retire_count >= retire_width:
                    rcycle += 1
                    retire_count = 0
            else:
                retire_count = 0
            last_retire = rcycle
            retire_count += 1
            retire_ring[ring_pos] = rcycle
            seq += 1
            ring_pos += 1
            if ring_pos == rob_size:
                ring_pos = 0
        executed = len(rows)
        self.cycle = cycle
        self.slots = slots
        self.branches_left = branches_left
        self.seq = seq
        self.last_retire_cycle = last_retire
        self.retire_count = retire_count
        rat._next_tag = next_tag
        stats = self.stats
        stats.fetched_correct += executed
        stats.executed_instructions += executed
        if load_waits:
            stats.load_wait_on_predicate += load_waits
        if predicate_is_false:
            stats.predicated_false_instructions += executed
        return completion

    def _execute_load(
        self,
        instr: Instruction,
        address: int,
        base: int,
        predicate_id: Optional[int],
    ) -> int:
        forward = self.store_buffer.lookup(
            address, self.seq, predicate_id, current_cycle=base
        )
        if forward.decision == ForwardDecision.FORWARD:
            return max(base, forward.entry.data_ready_cycle) + 1
        if forward.decision == ForwardDecision.WAIT:
            self.stats.load_wait_on_predicate += 1
            return max(base, forward.wait_until) + self.hierarchy.l1d.latency
        return base + self.hierarchy.data_access(address)

    def _fetch_branch_instruction(self, instr: Instruction) -> Tuple[int, int]:
        """Fetch the terminating conditional branch itself; returns
        ``(fetch_cycle, completion)`` — completion is its resolution."""
        fetch_cycle = self._fetch_slot(True)
        self.stats.fetched_correct += 1
        completion = (
            max(fetch_cycle + self._pipeline_depth,
                self._sources_ready(instr))
            + instr.latency
        )
        self._retire(completion)
        self.stats.executed_instructions += 1
        return fetch_cycle, completion

    # ------------------------------------------------------------------
    # Control transfers
    # ------------------------------------------------------------------

    def _handle_nonbranch_transfer(self, block) -> None:
        term = block.terminator
        if term is None:
            return
        pc = term.pc
        if term.opcode == Opcode.JMP:
            target = self._block_pc(self._block_function(block), term.target)
            self._taken_redirect(pc, target)
        elif term.opcode == Opcode.CALL:
            callee_pc = self.program.function(term.target).entry.first_pc
            if block.fallthrough is not None:
                function = self._block_function(block)
                return_pc = self._block_pc(function, block.fallthrough)
                self.ras.push(return_pc)
                self.call_context.append((function, block.fallthrough))
            self._taken_redirect(pc, callee_pc)
        elif term.opcode == Opcode.RET:
            if self.call_context:
                self.call_context.pop()
            predicted = self.ras.pop()
            self._advance_fetch_cycle()  # returns end the fetch cycle
            if predicted is None:
                # RAS underflow: the target is unknown until the return
                # executes — a full pipeline refill.
                self._advance_fetch_cycle(
                    self.cycle + self._pipeline_depth
                )

    def _transfer_fast(self, plan) -> None:
        """:meth:`_handle_nonbranch_transfer` driven by the block plan's
        precomputed terminator kind and target PCs."""
        kind = plan.term_kind
        if kind == TERM_NONE:
            return
        if kind == TERM_JMP:
            self._taken_redirect(plan.term_pc, plan.target_pc)
        elif kind == TERM_CALL:
            if plan.fall_block is not None:
                self.ras.push(plan.return_pc)
                self.call_context.append(
                    (plan.function, plan.fallthrough_name)
                )
            self._taken_redirect(plan.term_pc, plan.callee_pc)
        elif kind == TERM_RET:
            if self.call_context:
                self.call_context.pop()
            predicted = self.ras.pop()
            self._advance_fetch_cycle()  # returns end the fetch cycle
            if predicted is None:
                self._advance_fetch_cycle(
                    self.cycle + self._pipeline_depth
                )

    def _handle_trace_branch(self, cursor: TraceCursor, record) -> None:
        """Predict, possibly predicate, and account the block's branch."""
        instr = record.block.instructions[-1]
        actual = record.taken
        if self._predictor_is_perfect:
            self.predictor.set_oracle(actual)
        history_snapshot = self.predictor.snapshot()
        prediction = self.predictor.predict(instr.pc)
        fetch_cycle, resolution = self._fetch_branch_instruction(instr)
        context = BranchContext(
            instr, record, prediction, actual, resolution, history_snapshot
        )
        self.stats.retired_branches += 1

        if self._maybe_enter_dpred(cursor, context):
            return

        # Normal predicted branch.
        self.predictor.spec_update(prediction.taken)
        if self._confidence_is_perfect:
            self.confidence.set_oracle(not context.mispredicted)
        low_confidence = not self.confidence.is_confident(
            instr.pc, history_snapshot
        )
        if self.tracer is not None:
            self.tracer.note_confidence(instr.pc, not low_confidence, "branch")
        self._train_branch(context)

        if (
            self._is_dualpath
            and low_confidence
            and self.cycle > self.dual_until
            and self._fork_worthwhile(context)
        ):
            self._fork_dual_path(cursor, context)
            return

        if context.mispredicted:
            self.stats.mispredictions += 1
            self._mispredict_flush(context, cursor)
            self.predictor.repair(prediction, actual)
        else:
            if prediction.taken:
                taken_target = self._branch_taken_pc(record.block, instr)
                self._taken_redirect(instr.pc, taken_target)
        cursor.advance()

    def _handle_trace_branch_fast(self, cursor: TraceCursor, record) -> None:
        """:meth:`_handle_trace_branch` over the pre-decoded block plan:
        the branch's own fetch/execute accounting is inlined against the
        plan's terminator row, and the taken target comes from the plan
        instead of a name lookup.  Same call sequence into the predictor,
        confidence estimator, retirement ring, and dpred hook."""
        block = record.block
        plan = block._plan
        if plan is None:
            plan = self.analysis.block_plan(block, record.function)
        instr = block.instructions[-1]
        actual = record.taken
        predictor = self.predictor
        if self._predictor_is_perfect:
            predictor.set_oracle(actual)
        history_snapshot = predictor.snapshot()
        prediction = predictor.predict(instr.pc)
        # _fetch_branch_instruction, inlined over the terminator row.
        fetch_cycle = self._fetch_slot(True)
        stats = self.stats
        stats.fetched_correct += 1
        reg_ready = self.reg_ready
        base = 0
        for src in plan.rows[-1][5]:
            ready = reg_ready[src]
            if ready > base:
                base = ready
        depth_cycle = fetch_cycle + self._pipeline_depth
        if depth_cycle > base:
            base = depth_cycle
        resolution = base + plan.rows[-1][2]
        self._retire(resolution)
        stats.executed_instructions += 1
        context = BranchContext(
            instr, record, prediction, actual, resolution, history_snapshot
        )
        stats.retired_branches += 1

        if self._maybe_enter_dpred(cursor, context):
            return

        predictor.spec_update(prediction.taken)
        mispredicted = prediction.taken != actual
        if self._confidence_is_perfect:
            self.confidence.set_oracle(not mispredicted)
        low_confidence = not self.confidence.is_confident(
            instr.pc, history_snapshot
        )
        if self.tracer is not None:
            self.tracer.note_confidence(instr.pc, not low_confidence, "branch")
        predictor.train(prediction, actual)
        self.confidence.update(
            instr.pc, history_snapshot, was_correct=not mispredicted
        )

        if (
            self._is_dualpath
            and low_confidence
            and self.cycle > self.dual_until
            and self._fork_worthwhile(context)
        ):
            self._fork_dual_path(cursor, context)
            return

        if mispredicted:
            stats.mispredictions += 1
            self._mispredict_flush(context, cursor)
            predictor.repair(prediction, actual)
        elif prediction.taken:
            self._taken_redirect(instr.pc, plan.taken_pc)
        cursor.advance()

    def _train_branch(self, context: BranchContext) -> None:
        self.predictor.train(context.prediction, context.actual)
        self.confidence.update(
            context.instr.pc,
            context.history_snapshot,
            was_correct=not context.mispredicted,
        )

    # Hook overridden by the dynamic-predication subclass.
    def _maybe_enter_dpred(self, cursor: TraceCursor, context) -> bool:
        return False

    # ------------------------------------------------------------------
    # Misprediction handling
    # ------------------------------------------------------------------

    def _mispredict_flush(
        self, context: BranchContext, cursor: Optional[TraceCursor] = None
    ) -> None:
        """Fetch the wrong path until resolution, then flush and redirect."""
        self.stats.pipeline_flushes += 1
        if self.tracer is not None:
            self.tracer.note_flush(
                "mispredict", self.cycle, pc=context.instr.pc
            )
        self._walk_wrong_path(
            context.record,
            context.prediction.taken,
            until_cycle=context.resolution,
            cursor=cursor,
        )
        # Flush: fetch restarts at the correct target after resolution.
        self._advance_fetch_cycle(context.resolution + 1)

    _CI_LOOKAHEAD_BLOCKS = 32

    def _upcoming_correct_pcs(self, cursor: Optional[TraceCursor]) -> frozenset:
        """Block-start PCs the correct path visits soon after the branch —
        the wrong path is control-independent once it rejoins them."""
        if cursor is None:
            return frozenset()
        pcs = self._trace_pcs
        if pcs is None:
            pcs = self._trace_pcs = tuple(
                record.block.instructions[0].pc
                for record in self.trace.records
            )
        stop = min(len(pcs), cursor.index + 1 + self._CI_LOOKAHEAD_BLOCKS)
        return frozenset(pcs[cursor.index + 1: stop])

    def _walk_wrong_path(
        self,
        record,
        wrong_taken: bool,
        until_cycle: int,
        cursor: Optional[TraceCursor] = None,
    ) -> int:
        """Predictor-guided wrong-path fetch from the wrong target of the
        branch ending ``record.block``.  Instructions are classified
        control-dependent until the walk reaches a point the correct path
        also goes through (the branch's reconvergence point, or any block
        the correct path visits within the lookahead window — the dynamic
        notion Figure 1 measures), control-independent after.  Returns
        instructions fetched."""
        function = record.function
        block = record.block
        start = self._wrong_target_block(function, block, wrong_taken)
        if start is None:
            return 0
        reconv_pc = self._reconvergence_pc(function, block.name)
        upcoming = self._upcoming_correct_pcs(cursor)
        walker = StaticWalker(
            self.program, function, start, call_stack=self.call_context
        )
        fetched = 0
        reached_ci = False
        guard = 0
        while not walker.exhausted and self.cycle < until_cycle:
            guard += 1
            if guard > 10_000:
                break
            if self.watchdog is not None:
                self.watchdog.check(
                    self, where="wrong-path-walk", pc=record.block.first_pc
                )
            current = walker.block
            if not reached_ci and (
                current.first_pc == reconv_pc
                or current.first_pc in upcoming
            ):
                reached_ci = True
            for instr in current.instructions:
                if self.cycle >= until_cycle:
                    break
                self._fetch_slot(instr.is_cond_branch, occupies_rob=False)
                fetched += 1
                if reached_ci:
                    self.stats.fetched_wrong_ci += 1
                else:
                    self.stats.fetched_wrong_cd += 1
            self._step_walker(walker)
        return fetched

    def _step_walker(self, walker: StaticWalker) -> None:
        """Advance a static walker one block, predicting its branch."""
        if walker.exhausted:
            return
        block = walker.block
        if walker.predict_needed:
            instr = block.instructions[-1]
            prediction = self.predictor.predict(instr.pc)
            self.predictor.spec_update(prediction.taken)
            if prediction.taken:
                self._advance_fetch_cycle()  # taken ends the fetch cycle
            walker.step(prediction.taken)
        else:
            term = block.terminator
            if term is not None:
                self._advance_fetch_cycle()  # jmp/call/ret redirect
            walker.step()

    def _walk_wrong_path_fast(
        self,
        record,
        wrong_taken: bool,
        until_cycle: int,
        cursor: Optional[TraceCursor] = None,
    ) -> int:
        """:meth:`_walk_wrong_path` over block plans: the static walk
        follows the plans' precomputed successor references (the
        ``StaticWalker`` transition rules, inlined) and the per-
        instruction fetch-slot accounting runs on locals.  Wrong-path
        instructions never occupy the reorder buffer, so the whole walk
        touches only ``cycle``/``slots``/``branches_left`` — written
        back before every watchdog check and at the end."""
        analysis = self.analysis
        block_plan = analysis.block_plan
        function = record.function
        plan = block_plan(record.block, function)
        start = plan.taken_block if wrong_taken else plan.fall_block
        if start is None:
            return 0
        reconv_pc = analysis.reconvergence_pc(function, record.block.name)
        upcoming = self._upcoming_correct_pcs(cursor)
        origin_pc = plan.first_pc
        watchdog = self.watchdog
        predictor = self.predictor
        predict = predictor.predict
        spec_update = predictor.spec_update
        program = self.program
        stats = self.stats
        fetch_width = self._fetch_width
        half_width = self._half_width
        max_branches = self._max_branches
        dual_until = self.dual_until
        cycle = self.cycle
        slots = self.slots
        branches_left = self.branches_left
        call_stack = list(self.call_context)
        current = start
        fetched = 0
        reached_ci = False
        guard = 0
        while current is not None and cycle < until_cycle:
            guard += 1
            if guard > 10_000:
                break
            if watchdog is not None:
                self.cycle = cycle
                self.slots = slots
                self.branches_left = branches_left
                watchdog.check(self, where="wrong-path-walk", pc=origin_pc)
            plan = current._plan
            if plan is None:
                plan = block_plan(current, function)
            function = plan.function
            if not reached_ci and (
                plan.first_pc == reconv_pc or plan.first_pc in upcoming
            ):
                reached_ci = True
            took = 0
            for cond in plan.cond_flags:
                if cycle >= until_cycle:
                    break
                # _fetch_slot(cond, occupies_rob=False), inlined.
                if cond:
                    if slots <= 0 or branches_left <= 0:
                        cycle += 1
                        slots = (
                            half_width
                            if cycle <= dual_until
                            else fetch_width
                        )
                        branches_left = max_branches
                    branches_left -= 1
                elif slots <= 0:
                    cycle += 1
                    slots = (
                        half_width if cycle <= dual_until else fetch_width
                    )
                    branches_left = max_branches
                slots -= 1
                took += 1
            fetched += took
            if reached_ci:
                stats.fetched_wrong_ci += took
            else:
                stats.fetched_wrong_cd += took
            # _step_walker, inlined over the plan's successor references.
            kind = plan.term_kind
            if kind == TERM_BR:
                prediction = predict(plan.term_pc)
                spec_update(prediction.taken)
                if prediction.taken:
                    cycle += 1
                    slots = (
                        half_width if cycle <= dual_until else fetch_width
                    )
                    branches_left = max_branches
                    current = plan.taken_block
                else:
                    current = plan.fall_block
            elif kind == TERM_NONE:
                current = plan.fall_block
            else:
                # JMP / CALL / RET all end the fetch cycle.
                cycle += 1
                slots = half_width if cycle <= dual_until else fetch_width
                branches_left = max_branches
                if kind == TERM_JMP:
                    current = plan.target_block
                elif kind == TERM_CALL:
                    if plan.fall_block is not None:
                        call_stack.append(
                            (function, plan.fallthrough_name)
                        )
                    function = plan.callee_name
                    current = plan.callee_block
                else:  # TERM_RET
                    if call_stack:
                        function, return_block = call_stack.pop()
                        current = program.function(function).block(
                            return_block
                        )
                    else:
                        current = None  # walked off the program
        self.cycle = cycle
        self.slots = slots
        self.branches_left = branches_left
        return fetched

    # ------------------------------------------------------------------
    # Dual-path execution (Heil & Smith)
    # ------------------------------------------------------------------

    def _fork_worthwhile(self, context: BranchContext) -> bool:
        """Forking halves fetch bandwidth for the whole resolution window,
        so it only pays on near-coin-flip predictions.  With a perceptron
        predictor the output magnitude is itself a confidence measure
        (Jiménez & Lin): require a weak output on top of low JRS
        confidence before forking."""
        theta = getattr(self.predictor, "theta", None)
        if theta is None:
            return True
        return abs(context.prediction.output) <= theta // 4

    def _fork_dual_path(self, cursor: TraceCursor, context: BranchContext) -> None:
        """Fetch both paths at half bandwidth until the branch resolves.

        The correct path keeps streaming through the main loop (the
        ``dual_until`` window halves its effective fetch width); the wrong
        path's consumption is accounted by a cycle-neutral walk so the two
        "concurrent" fetch streams are not serialized."""
        self.stats.dualpath_forks += 1
        if self.tracer is not None:
            self.tracer.note_fork(context.instr.pc, self.cycle)
        self.dual_until = context.resolution
        if context.mispredicted:
            self.stats.mispredictions += 1
            # The correct path is already in the pipeline: no flush.
        saved = (self.cycle, self.slots, self.branches_left,
                 self.predictor.snapshot())
        self._walk_wrong_path(
            context.record,
            not context.actual,
            until_cycle=context.resolution,
        )
        self.cycle, self.slots, self.branches_left = saved[:3]
        self.predictor.restore(saved[3])
        if context.mispredicted:
            self.predictor.repair(context.prediction, context.actual)
        elif context.prediction.taken:
            taken_target = self._branch_taken_pc(context.record.block,
                                                 context.instr)
            self._taken_redirect(context.instr.pc, taken_target)
        cursor.advance()

    # ------------------------------------------------------------------
    # CFG helpers
    # ------------------------------------------------------------------

    def _block_function(self, block) -> str:
        function, _, _ = self.program.locate(block.first_pc)
        return function

    def _block_pc(self, function: str, block_name: str) -> int:
        return self.program.function(function).block(block_name).first_pc

    def _branch_taken_pc(self, block, instr: Instruction) -> int:
        return self._block_pc(self._block_function(block), instr.target)

    def _wrong_target_block(self, function: str, block, wrong_taken: bool):
        """The block the wrong path starts at (None if it falls off)."""
        cfg = self.program.function(function)
        instr = block.instructions[-1]
        if wrong_taken:
            return cfg.block(instr.target)
        if block.fallthrough is None:
            return None
        return cfg.block(block.fallthrough)

    def _reconvergence_pc(self, function: str, block_name: str) -> Optional[int]:
        # Memoized at program scope (shared across every simulator of
        # this program), not per instance — see repro.cfg.analysis.
        return self.analysis.reconvergence_pc(function, block_name)
