"""Predicate-aware store buffer with the Section 2.5 forwarding rules.

Dynamically predicated stores sit in the store buffer with their predicate
register id and are not released to the memory system until the predicate
resolves; a resolved-FALSE store is dropped.  Store-to-load forwarding
follows the paper's three rules — a load may forward from:

1. a non-predicated store;
2. a predicated store whose predicate value is already resolved (and TRUE
   — a resolved-FALSE store is skipped and the search continues to older
   stores);
3. a predicated store whose predicate is unresolved **only if** the load
   carries the same predicate register id (same dynamically predicated
   path).

Otherwise the load must wait until the blocking store's predicate value is
broadcast.  The timing model turns a WAIT decision into a load-completion
delay until the predicate's ready cycle.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Dict, List, Optional


class ForwardDecision(enum.Enum):
    FORWARD = "forward"          # value comes from a store buffer entry
    WAIT = "wait"                # blocked on an unresolved predicate
    MEMORY = "memory"            # no matching store: read the cache


class ForwardResult:
    __slots__ = ("decision", "entry", "wait_until")

    def __init__(self, decision, entry=None, wait_until=None):
        self.decision = decision
        self.entry = entry
        self.wait_until = wait_until

    def __repr__(self) -> str:
        return f"<ForwardResult {self.decision.value}>"


class StoreEntry:
    __slots__ = (
        "address",
        "predicate_id",
        "predicate_ready_cycle",
        "predicate_value",
        "data_ready_cycle",
        "seq",
    )

    def __init__(
        self,
        address: int,
        seq: int,
        data_ready_cycle: int,
        predicate_id: Optional[int] = None,
        predicate_ready_cycle: Optional[int] = None,
    ) -> None:
        self.address = address
        self.seq = seq
        self.data_ready_cycle = data_ready_cycle
        self.predicate_id = predicate_id
        self.predicate_ready_cycle = predicate_ready_cycle
        #: Filled in when the predicate resolves (None = unresolved).
        self.predicate_value: Optional[bool] = None

    @property
    def is_predicated(self) -> bool:
        return self.predicate_id is not None


class StoreBuffer:
    """A bounded FIFO of in-flight stores."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries = deque()
        # Per-address view of the same entries, insertion-ordered, so a
        # load's forwarding search touches only same-address stores (the
        # common no-match case is a single dict miss instead of a scan
        # over the whole buffer).  The rules in :meth:`lookup` only ever
        # match or skip same-address entries, so searching this view
        # youngest-first is decision-identical to scanning the deque.
        self._by_addr: Dict[int, List[StoreEntry]] = {}
        self.forwarded = 0
        self.waited = 0

    def __len__(self) -> int:
        return len(self._entries)

    def insert(
        self,
        address: int,
        seq: int,
        data_ready_cycle: int,
        predicate_id: Optional[int] = None,
        predicate_ready_cycle: Optional[int] = None,
        predicate_value: Optional[bool] = None,
    ) -> StoreEntry:
        """Add a store; the oldest entry drains if the buffer is full.

        A trace-driven caller that already knows how the predicate will
        resolve may pass ``predicate_value`` together with
        ``predicate_ready_cycle``: the value only becomes *visible* to
        forwarding once the ready cycle has passed.
        """
        if len(self._entries) >= self.capacity:
            evicted = self._entries.popleft()
            bucket = self._by_addr[evicted.address]
            bucket.remove(evicted)
            if not bucket:
                del self._by_addr[evicted.address]
        entry = StoreEntry(
            address, seq, data_ready_cycle, predicate_id, predicate_ready_cycle
        )
        entry.predicate_value = predicate_value
        self._entries.append(entry)
        bucket = self._by_addr.get(address)
        if bucket is None:
            self._by_addr[address] = [entry]
        else:
            bucket.append(entry)
        return entry

    @staticmethod
    def _is_resolved(entry: StoreEntry, current_cycle: int) -> bool:
        if entry.predicate_value is None:
            return False
        if entry.predicate_ready_cycle is None:
            return True
        return current_cycle >= entry.predicate_ready_cycle

    def resolve_predicate(self, predicate_id: int, value: bool) -> int:
        """Broadcast a resolved predicate value to all matching stores.

        Resolved-FALSE stores are dropped (never sent to memory).  Returns
        the number of entries affected.
        """
        affected = 0
        dropped = False
        kept = deque()
        for entry in self._entries:
            if entry.predicate_id == predicate_id:
                entry.predicate_value = value
                entry.predicate_ready_cycle = None  # visible immediately
                affected += 1
                if not value:
                    dropped = True
                    continue  # dropped
            kept.append(entry)
        self._entries = kept
        if dropped:
            self._rebuild_index()
        return affected

    def _rebuild_index(self) -> None:
        by_addr: Dict[int, List[StoreEntry]] = {}
        for entry in self._entries:
            bucket = by_addr.get(entry.address)
            if bucket is None:
                by_addr[entry.address] = [entry]
            else:
                bucket.append(entry)
        self._by_addr = by_addr

    def lookup(
        self,
        address: int,
        load_seq: int,
        load_predicate_id: Optional[int] = None,
        current_cycle: int = 0,
    ) -> ForwardResult:
        """Apply the Section 2.5 forwarding rules for a load."""
        bucket = self._by_addr.get(address)
        if not bucket:
            return ForwardResult(ForwardDecision.MEMORY)
        for entry in reversed(bucket):  # youngest older store first
            if entry.seq >= load_seq:
                continue
            if not entry.is_predicated:
                self.forwarded += 1
                return ForwardResult(ForwardDecision.FORWARD, entry)
            if self._is_resolved(entry, current_cycle):
                if entry.predicate_value:
                    self.forwarded += 1
                    return ForwardResult(ForwardDecision.FORWARD, entry)
                continue  # resolved FALSE: skip to older stores
            # Unresolved predicate.
            if (
                load_predicate_id is not None
                and entry.predicate_id == load_predicate_id
            ):
                self.forwarded += 1
                return ForwardResult(ForwardDecision.FORWARD, entry)
            self.waited += 1
            wait_until = entry.predicate_ready_cycle
            if wait_until is None or wait_until < current_cycle:
                wait_until = current_cycle
            return ForwardResult(
                ForwardDecision.WAIT, entry, wait_until=wait_until
            )
        return ForwardResult(ForwardDecision.MEMORY)

    def drain_resolved(self, up_to_cycle: int) -> int:
        """Remove entries whose data and predicate are resolved by the given
        cycle (they have been written to the caches).  Returns the count."""
        kept = deque()
        drained = 0
        for entry in self._entries:
            data_done = entry.data_ready_cycle <= up_to_cycle
            pred_done = not entry.is_predicated or self._is_resolved(
                entry, up_to_cycle
            )
            if data_done and pred_done:
                drained += 1
            else:
                kept.append(entry)
        self._entries = kept
        if drained:
            self._rebuild_index()
        return drained
