"""Pre-decoded block execution plans for the hot-path engine.

The timing model executes every *dynamic* instance of a basic block by
re-reading the same *static* facts about its instructions — opcode
class, source/destination registers, latency, whether it is a
conditional branch — through Python property calls, for hundreds of
thousands of dynamic blocks.  A :class:`BlockPlan` decodes each static
block **once** into flat parallel tuples that the fast fetch/execute/
retire loops (``engine="fast"``, the default) iterate directly, with
all hot simulator state bound to locals.

Plans are pure derived data: building one never mutates the program,
and a plan built from a *copy* of a block (functional traces loaded
from the artifact cache contain unpickled block copies) is byte-for-
byte equivalent to one built from the program's own block, because the
builder always resolves instruction facts and successor blocks through
the authoritative :class:`~repro.program.program.Program`.  Plans are
cached at program scope by
:class:`repro.cfg.analysis.ProgramAnalysis` and attached to block
objects (``BasicBlock._plan``) for O(1) lookup.

Successor resolution doubles as the ``StaticWalker`` walk table: the
plan holds direct references to the taken/fallthrough/jump-target/
callee-entry blocks of the *program's* CFG, so wrong-path walks follow
object references instead of name→block dictionary lookups.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.isa.instructions import Opcode

#: Terminator kinds (``BlockPlan.term_kind``).  ``TERM_NONE`` covers
#: plain fallthrough blocks *and* HALT blocks (HALT is not a control
#: instruction; a HALT plan simply has no successor).
TERM_NONE = 0
TERM_BR = 1
TERM_JMP = 2
TERM_CALL = 3
TERM_RET = 4

#: Instruction kind codes inside ``BlockPlan.rows``.
KIND_ALU = 0
KIND_LOAD = 1
KIND_STORE = 2


class BlockPlan:
    """One static basic block, decoded for the fast engine.

    ``rows`` is the per-instruction decode: one
    ``(is_cond_branch, kind, latency, max(latency, 1), dest, srcs)``
    tuple per instruction, where ``dest`` is ``-1`` for instructions
    that write no register and ``kind`` is one of the ``KIND_*`` codes.
    ``body_rows`` drops the terminating instruction (the
    ``skip_terminator`` fetch path, used for conditional branches the
    caller predicts separately).

    ``timing_rows`` is the batch engine's scalar row form —
    ``(kind, latency, max(latency, 1), dest, srcs, load_ordinal,
    store_ordinal)`` with the ordinals counting loads/stores within the
    block — precomputed here so the lockstep groups and the horizon
    macro blocks assemble their row tables without re-deriving it per
    group.
    """

    __slots__ = (
        "function",
        "block_name",
        "n",
        "first_pc",
        "rows",
        "body_rows",
        "timing_rows",
        "cond_flags",
        "load_count",
        "store_count",
        "term_kind",
        "term_pc",
        "taken_block",
        "fall_block",
        "target_block",
        "callee_name",
        "callee_block",
        "fallthrough_name",
        "taken_pc",
        "target_pc",
        "callee_pc",
        "return_pc",
    )

    def __init__(self, function: str, block_name: str) -> None:
        self.function = function
        self.block_name = block_name
        self.n = 0
        self.first_pc: Optional[int] = None
        self.rows: Tuple[Tuple, ...] = ()
        self.body_rows: Tuple[Tuple, ...] = ()
        self.timing_rows: Tuple[Tuple, ...] = ()
        self.cond_flags: Tuple[bool, ...] = ()
        self.load_count = 0
        self.store_count = 0
        self.term_kind = TERM_NONE
        self.term_pc: Optional[int] = None
        self.taken_block = None
        self.fall_block = None
        self.target_block = None
        self.callee_name: Optional[str] = None
        self.callee_block = None
        self.fallthrough_name: Optional[str] = None
        self.taken_pc: Optional[int] = None
        self.target_pc: Optional[int] = None
        self.callee_pc: Optional[int] = None
        self.return_pc: Optional[int] = None

    def __repr__(self) -> str:
        return (
            f"<BlockPlan {self.function}/{self.block_name} "
            f"({self.n} insts, term={self.term_kind})>"
        )


def build_block_plan(program, function: str, block) -> BlockPlan:
    """Decode one static block into a :class:`BlockPlan`.

    ``block`` may be any object equal in content to the program's block
    of the same name (e.g. an unpickled copy from a cached trace); the
    plan is always built from — and its successor references always
    point into — the authoritative program CFG.
    """
    cfg = program.function(function)
    auth = cfg.block(block.name)
    plan = BlockPlan(function, auth.name)
    instructions = auth.instructions
    plan.n = len(instructions)
    if instructions:
        plan.first_pc = auth.first_pc

    rows = []
    timing = []
    loads = stores = 0
    for instr in instructions:
        op = instr.opcode
        if op == Opcode.LOAD:
            kind = KIND_LOAD
            lord, stord = loads, -1
            loads += 1
        elif op == Opcode.STORE:
            kind = KIND_STORE
            lord, stord = -1, stores
            stores += 1
        else:
            kind = KIND_ALU
            lord = stord = -1
        latency = instr.latency
        lat1 = latency if latency > 1 else 1
        dest = -1 if instr.dest is None else instr.dest
        rows.append(
            (
                op == Opcode.BR,
                kind,
                latency,
                lat1,
                dest,
                instr.srcs,
            )
        )
        timing.append(
            (kind, latency, lat1, dest, tuple(instr.srcs), lord, stord)
        )
    plan.rows = tuple(rows)
    plan.body_rows = plan.rows[:-1]
    plan.timing_rows = tuple(timing)
    plan.cond_flags = tuple(row[0] for row in rows)
    plan.load_count = loads
    plan.store_count = stores

    term = auth.terminator
    fallthrough = auth.fallthrough
    if term is None:
        # Plain fallthrough — or HALT / dead end, which have no successor.
        if not auth.ends_in_halt and fallthrough is not None:
            plan.fall_block = cfg.block(fallthrough)
        return plan
    plan.term_pc = term.pc
    op = term.opcode
    if op == Opcode.BR:
        plan.term_kind = TERM_BR
        plan.taken_block = cfg.block(term.target)
        plan.taken_pc = plan.taken_block.first_pc
        if fallthrough is not None:
            plan.fall_block = cfg.block(fallthrough)
    elif op == Opcode.JMP:
        plan.term_kind = TERM_JMP
        plan.target_block = cfg.block(term.target)
        plan.target_pc = plan.target_block.first_pc
    elif op == Opcode.CALL:
        plan.term_kind = TERM_CALL
        plan.callee_name = term.target
        plan.callee_block = program.function(term.target).entry
        plan.callee_pc = plan.callee_block.first_pc
        if fallthrough is not None:
            plan.fall_block = cfg.block(fallthrough)
            plan.fallthrough_name = fallthrough
            plan.return_pc = plan.fall_block.first_pc
    elif op == Opcode.RET:
        plan.term_kind = TERM_RET
    return plan
