"""Vectorized lockstep batch engine (``MachineConfig.engine="batch"``).

Public surface:

* :class:`BatchCell` — one (program, trace, config) simulation request.
* :func:`run_batch` — simulate a list of cells; vector-eligible cells
  advance in lockstep over numpy struct-of-arrays, the rest fall back
  to the fast engine.  Results are bit-identical to the reference
  engine either way (tests/core/test_engine_batch.py).
* :func:`batch_supported` — whether the vector path is available at
  all (numpy importable) — the engine degrades to per-cell fast-engine
  runs when it is not, so ``engine="batch"`` never fails outright.
* :func:`cell_supported` — per-cell vector-envelope check with a
  human-readable reason for fallbacks.

See docs/performance.md for the design and the measured speedups.
"""

from __future__ import annotations

from typing import List

try:  # pragma: no cover - exercised indirectly by the fallback test
    import numpy  # noqa: F401

    _HAVE_NUMPY = True
except Exception:  # pragma: no cover
    _HAVE_NUMPY = False

if _HAVE_NUMPY:
    from repro.uarch.batch.engine import (  # noqa: F401
        BatchCell,
        cell_supported,
        run_batch,
    )
else:  # numpy missing: degrade every cell to the fast engine
    class BatchCell:  # type: ignore[no-redef]
        __slots__ = (
            "program", "trace", "config", "hints", "benchmark",
            "warm_words", "tracer",
        )

        def __init__(self, program, trace, config, hints=None,
                     benchmark="", warm_words=None, tracer=None):
            self.program = program
            self.trace = trace
            self.config = config
            self.hints = hints
            self.benchmark = benchmark
            self.warm_words = warm_words
            self.tracer = tracer

    def cell_supported(cell):  # type: ignore[no-redef]
        return False, "numpy is not importable"

    def run_batch(cells, fallback_reasons=None, profile=None,
                  gang_stats=None):  # type: ignore[no-redef]
        from repro.core.processors import simulate

        if fallback_reasons is not None:
            reason = "numpy is not importable"
            fallback_reasons[reason] = (
                fallback_reasons.get(reason, 0) + len(cells)
            )
        return [
            simulate(
                cell.program,
                cell.trace,
                cell.config.replace(engine="fast"),
                hints=cell.hints,
                benchmark=cell.benchmark,
                warm_words=cell.warm_words,
                tracer=cell.tracer,
            )
            for cell in cells
        ]


def batch_supported() -> bool:
    """True when the vectorized path (numpy) is available."""
    return _HAVE_NUMPY


__all__ = ["BatchCell", "batch_supported", "cell_supported", "run_batch"]
