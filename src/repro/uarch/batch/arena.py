"""Static arenas for the vectorized batch engine (``engine="batch"``).

The lockstep engine (:mod:`repro.uarch.batch.engine`) advances many
simulation cells in parallel over numpy struct-of-arrays.  Everything
that does not depend on per-cell *timing* is precomputed here once per
program / per trace and shared by every cell:

* **Program tables** (:class:`ProgramArena`) — the per-block row decode
  of :class:`~repro.uarch.plan.BlockPlan`, padded into rectangular
  numpy tables, plus successor block ids, perceptron/JRS indices, BTB
  redirect sites and reconvergence PCs for wrong-path walks.

* **Trace tables** (:class:`TraceArena`) — for baseline / dual-path
  machines the memory system, store buffer, return-address stack and
  architectural call context are *timing-independent*: the access
  sequence they observe is fixed by the trace alone, because wrong-path
  walks touch only the fetch-cycle accounting and the speculative
  history (see ``_walk_wrong_path_fast``), never the caches, the store
  buffer, the BTB, the RAS or the ROB.  One scalar replay per trace
  therefore pins down every icache stall, every load's latency or
  forwarding source, every RAS underflow and the call stack at each
  record — for every cell of that trace at once.

The replays reimplement the LRU/FIFO update rules of
:mod:`repro.memsys.cache` and :mod:`repro.uarch.storebuffer` in lean
scalar form; the engine-differential suite (bit-identical ``SimStats``
against the reference engine) is the guard that they stay
decision-identical.

The BTB is the one structure a walkless run still updates per cell, but
only through ``_taken_redirect``: each redirect PC always maps to the
same target, so as long as no BTB set can overflow (checked statically
per program) a one-bit "seen" flag per redirect site reproduces every
hit/miss decision.  Programs that could evict fall back to the fast
engine.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cfg.analysis import ProgramAnalysis
from repro.uarch.plan import (
    KIND_LOAD,
    KIND_STORE,
    TERM_BR,
    TERM_CALL,
    TERM_JMP,
    TERM_RET,
)

#: Architectural register file size plus the two synthetic columns the
#: engine routes padded reads/writes through: ``ZREG`` always reads 0
#: (source padding), ``JREG`` is a write-only junk column.
NUM_ARCH_REGS = 32
ZREG = NUM_ARCH_REGS
JREG = NUM_ARCH_REGS + 1

#: Sentinels.  A missing block first-PC and a missing reconvergence PC
#: both encode as ``-1`` — deliberately the *same* value, because the
#: reference engine's control-independence latch compares
#: ``plan.first_pc == reconv_pc`` where both sides are ``None`` for an
#: empty block with no reconvergence point, and ``None == None`` is
#: True.  The upcoming-PC window pads with ``NO_UPC`` (-3) so a padded
#: slot never matches either a real PC or the missing-PC sentinel.
NO_PC = -1
NO_RECONV = -1
NO_UPC = -3

#: Fixed Table 2 geometry the trace replay assumes (enforced by the
#: engine's eligibility check).  Sizes are in cache *lines* of 8 words.
_L1I_SETS, _L1I_WAYS, _L1I_LAT = 512, 2, 2
_L1D_SETS, _L1D_WAYS, _L1D_LAT = 256, 4, 2
_L2_SETS, _L2_WAYS, _L2_LAT = 2048, 8, 10
_MEM_LAT = 300
_LINE_WORDS = 8
_SB_CAPACITY = 128
_RAS_DEPTH = 64
_BTB_SETS, _BTB_WAYS = 1024, 4
_PERCEPTRONS = 1021
_HISTORY_BITS = 31


class ProgramArena:
    """Rectangular numpy decode of one program's block plans."""

    def __init__(self, program) -> None:
        analysis = ProgramAnalysis.of(program)
        plans = []
        self.gid: Dict[Tuple[str, str], int] = {}
        for cfg in program.functions():
            for block in cfg:
                self.gid[(cfg.name, block.name)] = len(plans)
                plans.append(analysis.block_plan(block, cfg.name))
        n = len(plans)
        self.n = n
        self.vector_ok = True
        self.reason = ""

        L = max((p.n for p in plans), default=0)
        K = 1
        for p in plans:
            for row in p.rows:
                if len(row[5]) > K:
                    K = len(row[5])
        self.L, self.K = L, K

        #: Scalar per-block row tuples (``BlockPlan.timing_rows``) plus
        #: per-block load/store counts — the engine's scalar tails, the
        #: dpred episodes and the horizon macro blocks all consume these
        #: directly instead of re-deriving them from the padded tables.
        self.ROWS: List[Tuple[Tuple, ...]] = [p.timing_rows for p in plans]
        self.LOADS: List[int] = [p.load_count for p in plans]
        self.STORES: List[int] = [p.store_count for p in plans]

        self.NROWS = np.zeros(n, np.int64)
        self.NBODY = np.zeros(n, np.int64)  # rows minus a BR terminator
        self.FPC = np.full(n, NO_PC, np.int64)
        self.TERM = np.zeros(n, np.int64)
        self.TAKEN = np.full(n, -1, np.int64)
        self.FALL = np.full(n, -1, np.int64)
        self.TARGET = np.full(n, -1, np.int64)
        self.CALLEE = np.full(n, -1, np.int64)
        self.SITE = np.full(n, -1, np.int64)
        self.PCT = np.zeros(n, np.int64)
        self.JPC = np.zeros(n, np.int64)
        #: Raw terminating-branch PC for BR blocks (-1 otherwise): the
        #: diverge-hint table is keyed by the branch instruction's PC,
        #: which ``JPC`` (already shifted for the JRS index) cannot
        #: recover.
        self.BRPC = np.full(n, -1, np.int64)
        self.RECONV = np.full(n, NO_RECONV, np.int64)
        self.BRLAT = np.zeros(n, np.int64)
        self.BRSRC = np.full((n, K), ZREG, np.int64)
        self.RKIND = np.zeros((n, L), np.int64)
        self.RLAT = np.zeros((n, L), np.int64)
        self.RDEST = np.full((n, L), JREG, np.int64)
        self.RSRC = np.full((n, L, K), ZREG, np.int64)
        self.RLORD = np.full((n, L), -1, np.int64)
        self.RSTORD = np.full((n, L), -1, np.int64)

        sites: Dict[int, int] = {}  # redirect pc -> dense site id

        def _gid_of(plan_block, function) -> int:
            if plan_block is None:
                return -1
            return self.gid[(function, plan_block.name)]

        for b, plan in enumerate(plans):
            self.NROWS[b] = plan.n
            is_br = plan.term_kind == TERM_BR
            self.NBODY[b] = plan.n - 1 if is_br else plan.n
            if plan.first_pc is not None:
                self.FPC[b] = plan.first_pc
            self.TERM[b] = plan.term_kind
            self.TAKEN[b] = _gid_of(plan.taken_block, plan.function)
            self.FALL[b] = _gid_of(plan.fall_block, plan.function)
            self.TARGET[b] = _gid_of(plan.target_block, plan.function)
            if plan.callee_block is not None:
                self.CALLEE[b] = self.gid[
                    (plan.callee_name, plan.callee_block.name)
                ]
            if any(plan.cond_flags[:-1]):
                # A mid-block conditional would break the walk's
                # "non-cond prefix + one cond row" closed form.
                self.vector_ok = False
                self.reason = "conditional branch inside a block body"
            loads = stores = 0
            for i, (cond, kind, latency, _lat1, dest, srcs) in enumerate(
                plan.rows
            ):
                self.RKIND[b, i] = kind
                self.RLAT[b, i] = latency
                if dest >= 0:
                    self.RDEST[b, i] = dest
                for j, src in enumerate(srcs):
                    self.RSRC[b, i, j] = src
                if kind == KIND_LOAD:
                    self.RLORD[b, i] = loads
                    loads += 1
                elif kind == KIND_STORE:
                    self.RSTORD[b, i] = stores
                    stores += 1
            if plan.term_kind in (TERM_BR, TERM_JMP, TERM_CALL):
                pc = plan.term_pc
                if pc not in sites:
                    sites[pc] = len(sites)
                self.SITE[b] = sites[pc]
            if is_br:
                self.PCT[b] = (plan.term_pc >> 2) % _PERCEPTRONS
                self.JPC[b] = plan.term_pc >> 2
                self.BRPC[b] = plan.term_pc
                reconv = analysis.reconvergence_pc(
                    plan.function, plan.block_name
                )
                if reconv is not None:
                    self.RECONV[b] = reconv
                self.BRLAT[b] = plan.rows[-1][2]
                for j, src in enumerate(plan.rows[-1][5]):
                    self.BRSRC[b, j] = src

        self.nsites = len(sites)
        # Static BTB no-eviction check: the seen-bit model is exact only
        # if no set can ever hold more than its ways.
        per_set: Dict[int, int] = {}
        for pc in sites:
            s = (pc >> 2) % _BTB_SETS
            per_set[s] = per_set.get(s, 0) + 1
            if per_set[s] > _BTB_WAYS:
                self.vector_ok = False
                self.reason = "BTB set can overflow (eviction possible)"


class _LRU:
    """One LRU cache level as insertion-ordered dicts (see Cache)."""

    __slots__ = ("sets", "ways", "nsets")

    def __init__(self, nsets: int, ways: int) -> None:
        self.nsets = nsets
        self.ways = ways
        self.sets: List[dict] = [{} for _ in range(nsets)]

    def access(self, line: int) -> bool:
        entry_set = self.sets[line % self.nsets]
        if line in entry_set:
            del entry_set[line]
            entry_set[line] = True
            return True
        if len(entry_set) >= self.ways:
            del entry_set[next(iter(entry_set))]
        entry_set[line] = True
        return False


class TraceArena:
    """Trace-static record tables for one (program, trace, warmup)."""

    def __init__(self, parena: ProgramArena, program, trace,
                 warm_words) -> None:
        records = trace.records
        nrec = len(records)
        self.nrec = nrec
        self.instruction_count = trace.instruction_count

        self.RBLK = np.zeros(nrec, np.int64)
        self.REXTRA = np.zeros(nrec, np.int64)
        self.RTAKEN = np.zeros(nrec, np.int64)
        self.RSEQ0 = np.zeros(nrec, np.int64)
        self.RL0 = np.zeros(nrec, np.int64)
        self.RS0 = np.zeros(nrec, np.int64)
        self.RUNDER = np.zeros(nrec, np.int64)
        self.RNODE = np.full(nrec, -1, np.int64)
        self.RFPC = np.full(nrec, NO_PC, np.int64)

        l1i = _LRU(_L1I_SETS, _L1I_WAYS)
        l1d = _LRU(_L1D_SETS, _L1D_WAYS)
        l2 = _LRU(_L2_SETS, _L2_WAYS)
        if warm_words:
            for address in warm_words:
                l2.access(address // _LINE_WORDS)

        # Store buffer FIFO of (address, local ordinal); per-address
        # buckets searched youngest-first, exactly like StoreBuffer.
        fifo: List[Tuple[int, int]] = []
        by_addr: Dict[int, List[int]] = {}
        fifo_head = 0  # logical popleft via index (amortized rebuild)

        ras_len = 0
        node_parent: List[int] = []
        node_ret: List[int] = []
        node = -1

        load_lat: List[int] = []
        load_fwd: List[int] = []
        gid = parena.gid
        TERM = parena.TERM
        FALL = parena.FALL
        seq = 0
        nstores = 0

        for r, record in enumerate(records):
            b = gid[(record.function, record.block.name)]
            self.RBLK[r] = b
            self.RSEQ0[r] = seq
            self.RL0[r] = len(load_lat)
            self.RS0[r] = nstores
            self.RNODE[r] = node
            fpc = parena.FPC[b]
            self.RFPC[r] = fpc
            if record.taken:
                self.RTAKEN[r] = 1

            # _icache_fetch(first_pc): inst_access(pc // 8).
            line = (fpc // _LINE_WORDS) // _LINE_WORDS
            if l1i.access(line):
                extra = 0
            elif l2.access(line):
                extra = _L2_LAT
            else:
                extra = _L2_LAT + _MEM_LAT
            self.REXTRA[r] = extra

            term = TERM[b]
            nbody = int(parena.NBODY[b])
            mem_addrs = record.mem_addrs
            mem_pos = 0
            for i in range(nbody):
                kind = parena.RKIND[b, i]
                if kind == KIND_LOAD:
                    address = mem_addrs[mem_pos]
                    mem_pos += 1
                    bucket = by_addr.get(address)
                    fwd = bucket[-1] if bucket else -1
                    if fwd >= 0:
                        load_fwd.append(fwd)
                        load_lat.append(0)
                    else:
                        load_fwd.append(-1)
                        dline = address // _LINE_WORDS
                        if l1d.access(dline):
                            lat = _L1D_LAT
                        elif l2.access(dline):
                            lat = _L1D_LAT + _L2_LAT
                        else:
                            lat = _L1D_LAT + _L2_LAT + _MEM_LAT
                        load_lat.append(lat)
                elif kind == KIND_STORE:
                    address = mem_addrs[mem_pos]
                    mem_pos += 1
                    if len(fifo) - fifo_head >= _SB_CAPACITY:
                        evicted_addr, evicted_ord = fifo[fifo_head]
                        fifo_head += 1
                        ebucket = by_addr[evicted_addr]
                        ebucket.remove(evicted_ord)
                        if not ebucket:
                            del by_addr[evicted_addr]
                        if fifo_head > 4096:
                            del fifo[:fifo_head]
                            fifo_head = 0
                    fifo.append((address, nstores))
                    by_addr.setdefault(address, []).append(nstores)
                    nstores += 1
            seq += int(parena.NROWS[b])  # the BR terminator retires too

            if term == TERM_CALL:
                if FALL[b] >= 0:
                    if ras_len < _RAS_DEPTH:
                        ras_len += 1
                    node_parent.append(node)
                    node_ret.append(int(FALL[b]))
                    node = len(node_parent) - 1
            elif term == TERM_RET:
                if node >= 0:
                    node = node_parent[node]
                if ras_len == 0:
                    self.RUNDER[r] = 1
                else:
                    ras_len -= 1

        self.LLAT = np.asarray(load_lat, np.int64)
        self.LFWD = np.asarray(load_fwd, np.int64)
        self.nloads = len(load_lat)
        self.nstores = nstores
        self.NODEPAR = np.asarray(node_parent, np.int64)
        self.NODERET = np.asarray(node_ret, np.int64)
        self.nnodes = len(node_parent)


class _BoundedArenaCache:
    """A weak-key memo with an LRU entry cap.

    Correctness comes from the weak keys (an entry never outlives its
    program/trace); *boundedness* comes from the cap: long design-space
    sweeps hold thousands of live trace objects (benchmark contexts,
    fuzz corpora), and without eviction the memos grow with them.  The
    cap evicts in least-recently-used order; an evicted arena is simply
    rebuilt on its next use."""

    __slots__ = ("cap", "data", "order")

    def __init__(self, cap: int) -> None:
        self.cap = cap
        self.data: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        self.order: Dict[int, "weakref.ref"] = {}

    def get(self, key):
        value = self.data.get(key)
        if value is not None:
            k = id(key)
            ref = self.order.pop(k, None)
            if ref is not None:
                self.order[k] = ref  # move to most-recent
        return value

    def put(self, key, value) -> None:
        self.data[key] = value
        self.order.pop(id(key), None)
        self.order[id(key)] = weakref.ref(key)
        self.trim()

    def trim(self) -> None:
        while len(self.order) > self.cap:
            k = next(iter(self.order))
            ref = self.order.pop(k)
            obj = ref()
            if obj is not None:
                self.data.pop(obj, None)

    def clear(self) -> None:
        self.data.clear()
        self.order.clear()

    def __len__(self) -> int:
        return len(self.data)


#: Default entry caps; ``set_arena_cache_cap`` resizes both at runtime
#: (the suite executors enforce them after every batch run).
_DEFAULT_PROGRAM_CAP = 64
_DEFAULT_TRACE_CAP = 256

_PROGRAM_ARENAS = _BoundedArenaCache(_DEFAULT_PROGRAM_CAP)
_TRACE_ARENAS = _BoundedArenaCache(_DEFAULT_TRACE_CAP)


def set_arena_cache_cap(programs: Optional[int] = None,
                        traces: Optional[int] = None) -> None:
    """Resize the arena memo caps (and trim immediately)."""
    if programs is not None:
        _PROGRAM_ARENAS.cap = programs
        _PROGRAM_ARENAS.trim()
    if traces is not None:
        _TRACE_ARENAS.cap = traces
        _TRACE_ARENAS.trim()


def arena_cache_sizes() -> Tuple[int, int]:
    """Current (program, trace) memo entry counts — for the cap tests
    and the suite executors' bookkeeping."""
    return len(_PROGRAM_ARENAS), len(_TRACE_ARENAS)


def trim_arena_caches() -> None:
    """Re-enforce the LRU caps (idempotent).  The suite executors call
    this after each batch run so multi-thousand-cell sweeps cannot grow
    the memos without bound even while every trace stays alive."""
    _PROGRAM_ARENAS.trim()
    _TRACE_ARENAS.trim()


def program_arena(program) -> ProgramArena:
    arena = _PROGRAM_ARENAS.get(program)
    if arena is None:
        arena = ProgramArena(program)
        _PROGRAM_ARENAS.put(program, arena)
    return arena


def trace_arena(parena: ProgramArena, program, trace,
                warm_words) -> TraceArena:
    """Build (or reuse) the trace tables; keyed by the trace object and
    a digest of the warm-up word list, which changes the L2 image the
    replay starts from."""
    per_trace = _TRACE_ARENAS.get(trace)
    if per_trace is None:
        per_trace = {}
        _TRACE_ARENAS.put(trace, per_trace)
    warm = tuple(warm_words) if warm_words else ()
    key = (len(warm), hash(warm))
    arena = per_trace.get(key)
    if arena is None:
        arena = per_trace[key] = TraceArena(parena, program, trace, warm)
    return arena


#: Dependent caches (the horizon span/macro registries) register a
#: clear callback here so ``clear_arena_caches`` drops them too.
_CLEAR_HOOKS: List = []


def clear_arena_caches() -> None:
    """Drop every memoized arena, so the next :func:`program_arena` /
    :func:`trace_arena` call rebuilds from scratch.  The bench harness
    calls this before a cold batch run: the weak-key memos outlive
    ``ProgramAnalysis.reset``, and a cold measurement must charge the
    arena builds to the engine."""
    _PROGRAM_ARENAS.clear()
    _TRACE_ARENAS.clear()
    for hook in _CLEAR_HOOKS:
        hook()
