"""The vectorized lockstep batch engine (``engine="batch"``).

One :class:`_Group` advances many independent simulation cells —
(program, trace, config, seed) combinations — in lockstep over numpy
struct-of-arrays.  Each driver iteration advances every live cell by
exactly one trace record: the per-record arithmetic of
:class:`repro.uarch.timing.TimingSimulator` (fetch slots, reorder-buffer
stalls, register dependences, load latencies, retirement) runs once per
*row position* across all cells instead of once per row per cell.  All
per-cell architectural state (fetch cycle, fetch slots, register-ready
times, retirement ring, perceptron weights, JRS counters, BTB seen-bits,
store-ready times) lives in arrays indexed by cell.

Bit-identity contract
---------------------

Every cell's :class:`~repro.uarch.stats.SimStats` equals the reference
engine's field-for-field (tests/core/test_engine_batch.py).  There is no
approximation anywhere: the vector body loop replays the reference
engine's inlined per-row sequence literally (ROB-window stall, slot
exhaustion, dual-path fetch-width selection, dependence wakeup,
retirement), with `where` masks in place of branches.

The one deliberately *scalar* piece is the wrong-path walk: when a cell
mispredicts (or dual-path forks), its walk runs synchronously in plain
Python — an exact transcription of ``_walk_wrong_path_fast`` — before
the lockstep loop continues.  Walks touch only the fetch-cycle
accounting and the speculative global history (never caches, store
buffer, BTB, RAS or ROB), are rare (one per misprediction), and are
cheap integer arithmetic; vectorizing them would force every cell to
wait one driver iteration per walked *block*, which measures far slower
than stepping the few walking cells inline.

The static tables come from :mod:`repro.uarch.batch.arena`: per-program
block decode plus a per-trace replay of everything timing-independent
(icache stalls, load latencies and forwarding sources, store-buffer
contents, RAS underflows, the architectural call context).
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.uarch.batch.arena import (
    JREG,
    NO_UPC,
    ZREG,
    ProgramArena,
    TraceArena,
    program_arena,
    trace_arena,
)
from repro.uarch.batch.horizon import extended_arena, trace_spans
from repro.uarch.plan import (
    KIND_LOAD,
    KIND_STORE,
    TERM_BR,
    TERM_CALL,
    TERM_JMP,
    TERM_NONE,
    TERM_RET,
)
from repro.uarch.stats import SimStats

#: Perceptron constants for the default predictor instance the vector
#: path supports (``make_predictor("perceptron")`` with no overrides).
_NPERC = 1021
_HBITS = 31
_THETA = int(1.93 * _HBITS + 14)  # 73
_WMAX, _WMIN = 127, -128
_M31 = (1 << _HBITS) - 1
#: JRS constants (``make_estimator("jrs")`` table geometry).
_JTAB = 2048
_JMAX = 15
_JHMASK = 0xF
#: Walk block guard, mirroring ``_walk_wrong_path_fast``.
_WALK_GUARD = 10_000
#: Lookahead window for the control-independence classification.
_CI_LOOKAHEAD = 32
#: Active-lane count at which the step loop's per-row numpy dispatch
#: costs more than a plain-python row, so the remaining lanes finish
#: their (rare, long) blocks on the scalar row tail instead.
_TAIL_LANES = 16
#: Lane width up to which _trace_step pre-gathers the whole ring window
#: in one rectangular fancy-index (fewer numpy calls); above it, per-row
#: suffix gathers move strictly fewer elements.
_RING_PREGATHER = 512

_TRACE, _DONE = 0, 2

#: Episode path outcomes — the ``PathOutcome`` subset the plain dmp/dhp
#: envelope can produce (no NEW_DIVERGE without multiple_diverge).
_P_CFM, _P_RESOLVED, _P_EXHAUSTED, _P_LIMIT = 0, 1, 2, 3


def _compile_row_loop(rows, nr: int, variant: str, anydp: bool = False):
    """exec-compile one block's scalar row loop, unrolled.

    The interpreted row loops spend most of their time on bookkeeping
    the block makes constant: tuple unpacking, the kind dispatch, the
    source iteration.  Unrolling the ``nr`` rows with those constants
    folded into the source keeps the statements — and therefore the
    arithmetic, in the same order on the same ints — identical to the
    loops this replaces, while roughly halving the per-row cost.

    ``variant="tail"`` is the step loop's scalar row tail (resumable at
    any starting row ``i0`` via per-row guards); ``variant="ep"`` is an
    episode's on-trace block (all rows, predicated load/store rules,
    state carried on the ``_EpState``).
    """
    out = []
    a = out.append
    # Both variants keep the ring on the numpy row: reads only fire
    # once the window is full (one scalar gather per row, and rows
    # written since the write log opened at ``sq0`` are served from the
    # log), and the writes — consecutive sequence numbers — go back as
    # one circular span, so a lane never pays to convert or copy the
    # full ROB.  The tail flushes its span here; an episode's log spans
    # several calls and is flushed once by ``_dpred_epilogue``.
    if variant == "tail":
        a("def _f(i0, l0, s0, cyc, sl, blv, du, wt, hwt, mbt, dept,"
          " robv, rwt, lastt, cntt, sq0, rr, ring, srd, spr, lfwd,"
          " llat):")
        a(" lwc = 0; seq = sq0; wr = []; wa = wr.append")
    else:
        a("def _f(st, l0, s0, res, pid, srd, spr, spid, lfwd, llat):")
        a(" cyc = st.cycle; sl = st.slots; blv = st.bl")
        a(" du = st.du; wt = st.w; hwt = st.hw; mbt = st.mb")
        a(" dept = st.depth; robv = st.rob; rwt = st.rw")
        a(" lastt = st.last; cntt = st.cnt; seq = st.seq")
        a(" rr = st.rr; ring = st.ring; sq0 = st.seq0")
        a(" wr = st.wr; wa = wr.append; lwc = 0")
    for idx in range(nr):
        kind, lat, _lat1, dest, srcs, lord, stord = rows[idx]
        p = " "
        if variant == "tail":
            a(f" if i0 <= {idx}:")
            p = "  "
        a(f"{p}if seq >= robv:")
        a(f"{p} j = seq - robv")
        a(f"{p} oldest = wr[j - sq0] if j >= sq0 else ring[j % robv]")
        a(f"{p} if cyc < oldest:")
        a(f"{p}  cyc = oldest; sl = hwt if cyc <= du else wt; blv = mbt")
        a(f"{p}if sl <= 0:")
        a(f"{p} cyc += 1; sl = hwt if cyc <= du else wt; blv = mbt")
        a(f"{p}sl -= 1")
        a(f"{p}base = cyc + dept")
        for s_ in srcs:
            a(f"{p}rdy = rr[{s_}]")
            a(f"{p}if rdy > base: base = rdy")
        if kind == KIND_LOAD:
            a(f"{p}fwd = lfwd[l0 + {lord}]")
            a(f"{p}if fwd >= 0:")
            if variant == "ep":
                a(f"{p} pready = int(spr[fwd])")
                a(f"{p} if base >= pready or spid.get(fwd) == pid:")
                a(f"{p}  sv = int(srd[fwd])")
                a(f"{p}  comp = (sv if sv > base else base) + 1")
                a(f"{p} else:")
                a(f"{p}  lwc += 1; comp = pready + 2")
            elif anydp:
                a(f"{p} if base < spr[fwd]:")
                a(f"{p}  lwc += 1; comp = int(spr[fwd]) + 2")
                a(f"{p} else:")
                a(f"{p}  sv = int(srd[fwd])")
                a(f"{p}  comp = (sv if sv > base else base) + 1")
            else:
                a(f"{p} sv = int(srd[fwd])")
                a(f"{p} comp = (sv if sv > base else base) + 1")
            a(f"{p}else:")
            a(f"{p} comp = base + llat[l0 + {lord}]")
        elif kind == KIND_STORE:
            a(f"{p}comp = base + 1")
            if variant == "ep":
                a(f"{p}ordn = s0 + {stord}")
                a(f"{p}srd[ordn] = comp; spr[ordn] = res")
                a(f"{p}spid[ordn] = pid")
            else:
                a(f"{p}srd[s0 + {stord}] = comp")
        else:
            a(f"{p}comp = base + {lat}")
        if dest >= 0:
            a(f"{p}rr[{dest}] = comp")
        a(f"{p}rc = comp + 1")
        a(f"{p}if rc < lastt: rc = lastt")
        a(f"{p}if rc == lastt and cntt >= rwt: rc += 1")
        a(f"{p}if rc > lastt: cntt = 1")
        a(f"{p}else: cntt += 1")
        a(f"{p}lastt = rc")
        a(f"{p}wa(rc)")
        a(f"{p}seq += 1")
    if variant == "tail":
        a(" nw = len(wr)")
        a(" if nw >= robv:")
        a("  b0 = sq0 + nw - robv")
        a("  for off in range(robv):")
        a("   ring[(b0 + off) % robv] = wr[nw - robv + off]")
        a(" elif nw:")
        a("  a0 = sq0 % robv")
        a("  end = a0 + nw")
        a("  if end <= robv:")
        a("   ring[a0:end] = wr")
        a("  else:")
        a("   ring[a0:robv] = wr[:robv - a0]")
        a("   ring[:end - robv] = wr[robv - a0:]")
        a(" return cyc, sl, blv, lastt, cntt, lwc")
    else:
        a(" st.cycle = cyc; st.slots = sl; st.bl = blv")
        a(" st.last = lastt; st.cnt = cntt; st.seq = seq")
        a(" st.lw += lwc")
    ns: dict = {}
    exec("\n".join(out), ns)  # noqa: S102 - self-generated source
    return ns["_f"]


def _compile_static_block(rows, isbr: bool):
    """exec-compile a predicate-FALSE static block (_ep_static_block).

    Static rows never retire and never touch the ring, so two folds on
    top of the plain unrolling are sound: rows with no destination
    compute nothing (their base/completion escape nowhere), and the
    window-stall test runs once — ``oldest`` is frozen with the
    sequence number and the cycle only grows, so after the first row
    the test can never fire again.
    """
    out = []
    a = out.append
    a("def _f(st, oldest):")
    a(" cyc = st.cycle; sl = st.slots; blv = st.bl")
    a(" du = st.du; wt = st.w; hwt = st.hw; mbt = st.mb")
    a(" dept = st.depth; rr = st.rr")
    first = True
    for kind, _lat, lat1, dest, srcs, _lo, _so in (
        rows[:-1] if isbr else rows
    ):
        if first:
            a(" if cyc < oldest:")
            a("  cyc = oldest; sl = hwt if cyc <= du else wt; blv = mbt")
            first = False
        a(" if sl <= 0:")
        a("  cyc += 1; sl = hwt if cyc <= du else wt; blv = mbt")
        a(" sl -= 1")
        if dest >= 0:
            a(" base = cyc + dept")
            for s_ in srcs:
                a(f" rdy = rr[{s_}]")
                a(" if rdy > base: base = rdy")
            a(f" rr[{dest}] = base + {2 if kind == KIND_LOAD else lat1}")
    if isbr:
        kind, _lat, lat1, dest, srcs, _lo, _so = rows[-1]
        if first:
            a(" if cyc < oldest:")
            a("  cyc = oldest; sl = hwt if cyc <= du else wt; blv = mbt")
        a(" if sl <= 0 or blv <= 0:")
        a("  cyc += 1; sl = hwt if cyc <= du else wt; blv = mbt")
        a(" blv -= 1")
        a(" sl -= 1")
        if dest >= 0:
            a(" base = cyc + dept")
            for s_ in srcs:
                a(f" rdy = rr[{s_}]")
                a(" if rdy > base: base = rdy")
            a(f" rr[{dest}] = base + {2 if kind == KIND_LOAD else lat1}")
    a(" st.cycle = cyc; st.slots = sl; st.bl = blv")
    ns: dict = {}
    exec("\n".join(out), ns)  # noqa: S102 - self-generated source
    return ns["_f"]


class _EpState:
    """One cell's scalar state threaded through a dpred episode.

    The episode transcription (`_Group._dpred_epilogue` and its path
    fetchers) works on plain-python copies of the cell's fetch
    accounting and register-ready file — list indexing beats numpy
    scalar extraction several-fold on these scalar tails — and scatters
    them back once per episode.  The retirement ring stays on the numpy
    row (``ring``): the episode's retires land in the ``wr`` write log
    at consecutive sequence numbers from ``seq0``, window-stall reads
    past that boundary serve from the log, and the epilogue flushes the
    log back as one circular span instead of converting the full ROB.
    ``campcs``/``camlock`` model the episode's CfmCam (lock on first
    match, both paths share it); the counters are per-episode deltas."""

    __slots__ = (
        "ci", "cycle", "slots", "bl", "du", "w", "hw", "mb", "depth",
        "rob", "rw", "stops", "ghr", "rr", "ring", "wr", "last", "cnt",
        "seq", "seq0", "written", "campcs", "camlock",
        "fc", "ex", "rb", "mp", "fl", "cd", "pf", "lw",
    )


class _WalkPath:
    """Structural wrong-path walk shared by every cell on one trace.

    The block sequence a walk visits — and the predictions steering it —
    depends only on the start block, the history register, the
    perceptron weights and the reconvergence targets, never on per-cell
    cycle accounting.  All cells of one trace hold bit-identical
    predictor state at every step (training is outcome-driven), so on a
    config-grid sweep the structural walk is computed once and each cell
    replays only its own slot/cycle arithmetic over the cached blocks.
    Blocks are appended lazily: a cell with more cycle headroom extends
    the shared path where the previous cell's replay stopped."""

    __slots__ = (
        "blocks", "cur", "ghr", "node", "local", "reached", "guard",
        "reconv", "upcoming", "weights", "replays",
    )

    def __init__(self, start, ghr, node, reconv, upcoming, weights):
        self.blocks: List[Tuple[int, bool, bool, bool]] = []
        self.cur = start
        self.ghr = ghr
        self.node = node
        self.local: List[int] = []
        self.reached = False
        self.guard = 0
        self.reconv = reconv
        self.upcoming = upcoming
        self.weights = weights
        #: (rel, slots, branches, width, maxb) -> (dcycle, cd, ci): the
        #: replay outcome is a pure function of the *relative* cycle
        #: budget whenever the fetch-width regime is uniform, and cells
        #: of a config grid frequently collide on it.
        self.replays: Dict[tuple, Tuple[int, int, int]] = {}


class BatchCell:
    """One (program, trace, config) simulation the batch engine runs."""

    __slots__ = (
        "program", "trace", "config", "hints", "benchmark", "warm_words",
        "tracer",
    )

    def __init__(self, program, trace, config, hints=None, benchmark="",
                 warm_words=None, tracer=None):
        self.program = program
        self.trace = trace
        self.config = config
        self.hints = hints
        self.benchmark = benchmark
        self.warm_words = warm_words
        self.tracer = tracer


def cell_supported(cell: BatchCell) -> Tuple[bool, str]:
    """Whether the vector path can run this cell bit-identically.

    Anything outside the envelope is not an error — ``run_batch`` falls
    back to the fast engine per cell — but the reason string feeds the
    differential tests and ``docs/performance.md``.
    """
    from repro.validation.runtime import paranoid_enabled

    config = cell.config
    if cell.tracer is not None:
        return False, "event tracer attached"
    if config.mode in ("dmp", "dhp"):
        # Plain dynamic predication vectorizes; each enhancement that
        # does not is named so the fallback summary can group by it.
        if config.loop_predication:
            return False, "loop predication (loop episodes are scalar-only)"
        if config.early_exit:
            return False, "early exit (alternate-path early exit is scalar-only)"
        if config.multiple_diverge:
            return False, (
                "multiple diverge branches "
                "(restart/nested episodes are scalar-only)"
            )
        if config.selective_predictor_update:
            return False, "selective predictor update (scalar-only)"
    elif config.mode == "mpp":
        # The learned hint table changes between lookups as the predictor
        # trains, which the ganged-episode kernels cannot express.
        return False, "mode 'mpp' (learned merge points are scalar-only)"
    elif config.mode not in ("baseline", "dualpath"):
        return False, f"mode {config.mode!r} (wish branches are scalar-only)"
    if config.oracle_checks or config.watchdog or paranoid_enabled():
        return False, "oracle/watchdog instrumentation"
    if config.predictor_kind != "perceptron" or config.predictor_args:
        return False, "non-default direction predictor"
    if config.confidence_kind != "jrs" or (
        set(config.confidence_args) - {"threshold"}
    ):
        return False, "non-default confidence estimator"
    if config.btb_entries != 4096 or config.ras_depth != 64:
        return False, "non-default BTB/RAS geometry"
    if config.store_buffer_size != 128:
        return False, "non-default store buffer"
    if config.memory_latency != 300 or config.prefetch_lines != 0:
        return False, "non-default memory system"
    parena = program_arena(cell.program)
    if not parena.vector_ok:
        return False, parena.reason
    return True, ""


def _fallback(cell: BatchCell) -> SimStats:
    from repro.core.processors import simulate

    return simulate(
        cell.program,
        cell.trace,
        cell.config.replace(engine="fast"),
        hints=cell.hints,
        benchmark=cell.benchmark,
        warm_words=cell.warm_words,
        tracer=cell.tracer,
    )


def run_batch(
    cells: List[BatchCell],
    fallback_reasons: Optional[Dict[str, int]] = None,
    profile: Optional[Dict[str, float]] = None,
    gang_stats: Optional[Dict[str, int]] = None,
) -> List[SimStats]:
    """Simulate every cell; vector-eligible cells run in one lockstep
    group, the rest fall back to the fast engine (bit-identical either
    way).  Pass a dict as ``fallback_reasons`` to receive a histogram of
    ``cell_supported`` reason strings for the cells that fell off the
    vector path (the ``run_suite``/CLI fallback summary).

    ``profile`` (a dict, accumulated into) receives wall-time phase
    attribution: ``arena_build`` (group construction: arenas, horizon
    spans, table concatenation), ``step_loop`` (the vector driver),
    ``episode_tails`` (dpred episodes: gang replay + scalar epilogues),
    ``scalar_walks`` (mispredict/fork wrong-path walks) and
    ``scalar_fallback`` (cells simulated on the fast engine).
    ``gang_stats`` (likewise accumulated) receives the ganged-episode
    accounting: ``gangs``, ``ganged_lanes``, ``singleton_lanes``,
    ``max_gang``."""
    results: List[Optional[SimStats]] = [None] * len(cells)
    vec: List[int] = []
    fb_time = 0.0
    for i, cell in enumerate(cells):
        ok, reason = cell_supported(cell)
        if ok:
            vec.append(i)
        else:
            if fallback_reasons is not None:
                fallback_reasons[reason] = (
                    fallback_reasons.get(reason, 0) + 1
                )
            t0 = perf_counter()
            results[i] = _fallback(cell)
            fb_time += perf_counter() - t0
    if vec:
        t0 = perf_counter()
        group = _Group([cells[i] for i in vec])
        build = perf_counter() - t0
        t0 = perf_counter()
        out = group.run()
        run_time = perf_counter() - t0
        for i, stats in zip(vec, out):
            results[i] = stats
        if profile is not None:
            ep = group._prof["episode_tails"]
            wk = group._prof["scalar_walks"]
            for key, val in (
                ("arena_build", build),
                ("step_loop", run_time - ep - wk),
                ("episode_tails", ep),
                ("scalar_walks", wk),
            ):
                profile[key] = profile.get(key, 0.0) + val
        if gang_stats is not None:
            for key, val in (
                ("gangs", group.gang_count),
                ("ganged_lanes", group.gang_lanes),
                ("singleton_lanes", group.gang_singletons),
                ("max_gang", group.gang_max),
            ):
                if key == "max_gang":
                    gang_stats[key] = max(gang_stats.get(key, 0), val)
                else:
                    gang_stats[key] = gang_stats.get(key, 0) + val
    if profile is not None:
        profile["scalar_fallback"] = (
            profile.get("scalar_fallback", 0.0) + fb_time
        )
    return results  # type: ignore[return-value]


def _jrs_threshold(config) -> int:
    threshold = config.confidence_args.get("threshold", 12)
    if threshold is None:
        return _JMAX
    return min(threshold, _JMAX)


class _Group:
    """All vector-eligible cells, advanced in lockstep."""

    def __init__(self, cells: List[BatchCell]) -> None:
        self.cells = cells
        n = len(cells)
        self.n = n
        i8 = np.int64

        # -- shared static tables (concatenated across programs/traces)
        # Pass 1: raw arenas + horizon span tables.  trace_spans interns
        # each trace's quiet-run macro blocks into the program's horizon
        # index, so the extended block space is known before group
        # offsets are assigned.
        raw_seen: Dict[int, ProgramArena] = {}
        raw_list: List[ProgramArena] = []
        cell_pa: List[ProgramArena] = []
        cell_ta: List[TraceArena] = []
        t_spans: Dict[int, Any] = {}
        for cell in cells:
            pa = program_arena(cell.program)
            if id(pa) not in raw_seen:
                raw_seen[id(pa)] = pa
                raw_list.append(pa)
            ta = trace_arena(pa, cell.program, cell.trace, cell.warm_words)
            if id(ta) not in t_spans:
                t_spans[id(ta)] = trace_spans(pa, ta)
            cell_pa.append(pa)
            cell_ta.append(ta)
        rawL = max(pa.L for pa in raw_list)

        # Pass 2: offsets over the extended (blocks + span macros)
        # space.  p_list holds ProgramArena-shaped views; every
        # concatenation below reads them exactly like raw arenas.
        exts: Dict[int, Tuple[Any, int]] = {}
        tarenas: Dict[int, Tuple[TraceArena, int, int, int, int]] = {}
        p_list: List[Any] = []
        t_list: List[Tuple[TraceArena, int]] = []  # (tarena, boff)
        boffs = np.zeros(n, i8)
        roffs = np.zeros(n, i8)
        rends = np.zeros(n, i8)
        loffs = np.zeros(n, i8)
        noffs = np.zeros(n, i8)
        nblk = nrec = nload = nnode = 0
        for pa in raw_list:
            ext = extended_arena(pa)
            exts[id(pa)] = (ext, nblk)
            p_list.append(ext)
            nblk += ext.n
        for ci, cell in enumerate(cells):
            boff = exts[id(cell_pa[ci])][1]
            ta = cell_ta[ci]
            tkey = id(ta)
            if tkey not in tarenas:
                tarenas[tkey] = (ta, nrec, nload, nnode, boff)
                t_list.append((ta, boff))
                nrec += ta.nrec
                nload += ta.nloads
                nnode += ta.nnodes
            _, roff, loff, noff, _ = tarenas[tkey]
            boffs[ci] = boff
            roffs[ci] = roff
            rends[ci] = roff + ta.nrec
            loffs[ci] = loff
            noffs[ci] = noff
        # Per-cell extended block counts (for _init_dpred's hint scan).
        self.pblkn = [exts[id(pa)][0].n for pa in cell_pa]

        L = max(pa.L for pa in p_list)
        K = max(pa.K for pa in p_list)
        self.L, self.K = L, K

        def cat1(name, fill=0):
            out = np.full(nblk, fill, i8)
            pos = 0
            for pa in p_list:
                out[pos:pos + pa.n] = getattr(pa, name)
                pos += pa.n
            return out

        def cat_gid(name):
            # Successor gids: offset valid entries into group block space.
            out = np.full(nblk, -1, i8)
            pos = 0
            for pa in p_list:
                local = getattr(pa, name)
                out[pos:pos + pa.n] = np.where(local >= 0, local + pos, -1)
                pos += pa.n
            return out

        self.NROWS = cat1("NROWS")
        self.NBODY = cat1("NBODY")
        self.FPC = cat1("FPC")
        self.TERM = cat1("TERM")
        self.TAKEN = cat_gid("TAKEN")
        self.FALL = cat_gid("FALL")
        self.TARGET = cat_gid("TARGET")
        self.CALLEE = cat_gid("CALLEE")
        self.SITE = cat1("SITE", -1)
        self.PCT = cat1("PCT")
        self.JPC = cat1("JPC")
        self.BRPC = cat1("BRPC", -1)
        self.RECONV = cat1("RECONV")
        self.BRLAT = cat1("BRLAT")
        self.BRSRC = np.full((nblk, K), ZREG, i8)
        self.RKIND = np.zeros((nblk, L), i8)
        self.RLAT = np.zeros((nblk, L), i8)
        self.RDEST = np.full((nblk, L), JREG, i8)
        self.RSRC = np.full((nblk, L, K), ZREG, i8)
        self.RLORD = np.full((nblk, L), -1, i8)
        self.RSTORD = np.full((nblk, L), -1, i8)
        pos = 0
        for pa in p_list:
            self.BRSRC[pos:pos + pa.n, :pa.K] = pa.BRSRC
            self.RKIND[pos:pos + pa.n, :pa.L] = pa.RKIND
            self.RLAT[pos:pos + pa.n, :pa.L] = pa.RLAT
            self.RDEST[pos:pos + pa.n, :pa.L] = pa.RDEST
            self.RSRC[pos:pos + pa.n, :pa.L, :pa.K] = pa.RSRC
            self.RLORD[pos:pos + pa.n, :pa.L] = pa.RLORD
            self.RSTORD[pos:pos + pa.n, :pa.L] = pa.RSTORD
            pos += pa.n
        # Decode-table values are register names / opcode kinds (<= 33):
        # 1-byte lanes quarter the gather traffic of the per-row loop.
        self.RKIND = self.RKIND.astype(np.int8)
        self.RDEST = self.RDEST.astype(np.int8)
        self.RSRC = self.RSRC.astype(np.int8)
        self.BRSRC = self.BRSRC.astype(np.int8)
        # Per-(block, row) presence bits — src slot j occupied -> bit j,
        # load -> bit K, store -> bit K+1.  The step loop ORs these over
        # the active lanes in one reduction instead of scanning each
        # gathered decode column per row (pads are KIND_ALU/ZREG, so a
        # padding row contributes no bits).
        pres = np.zeros((nblk, L), i8)
        for j in range(K):
            pres |= (self.RSRC[:, :, j] != ZREG).astype(i8) << j
        pres |= (self.RKIND == KIND_LOAD).astype(i8) << K
        pres |= (self.RKIND == KIND_STORE).astype(i8) << (K + 1)
        self.PRES = pres

        self.RECBLK = np.zeros(nrec, i8)
        # Horizon span lookup: the block to *fetch* at each record (the
        # record's own, or a span macro covering a quiet run), and the
        # record index where that fetch lands the cursor.
        self.SPANBLK = np.zeros(nrec, i8)
        self.SPANLAST = np.zeros(nrec, i8)
        self.REXTRA = np.zeros(nrec, i8)
        self.RTAKEN = np.zeros(nrec, i8)
        self.RSEQ0 = np.zeros(nrec, i8)
        self.RL0 = np.zeros(nrec, i8)
        self.RS0 = np.zeros(nrec, i8)
        self.RUNDER = np.zeros(nrec, i8)
        self.RNODE = np.full(nrec, -1, i8)
        self.RFPC = np.full(nrec, NO_UPC, i8)
        self.LLAT = np.zeros(max(nload, 1), i8)
        self.LFWD = np.full(max(nload, 1), -1, i8)
        self.NODEPAR = np.full(max(nnode, 1), -1, i8)
        self.NODERET = np.full(max(nnode, 1), -1, i8)
        rpos = lpos = npos = 0
        for ta, boff in t_list:
            sl = slice(rpos, rpos + ta.nrec)
            self.RECBLK[sl] = ta.RBLK + boff
            spans = t_spans[id(ta)]
            self.SPANBLK[sl] = spans.SPANBLK + boff
            self.SPANLAST[sl] = spans.SPANLAST + rpos
            self.REXTRA[sl] = ta.REXTRA
            self.RTAKEN[sl] = ta.RTAKEN
            self.RSEQ0[sl] = ta.RSEQ0
            self.RL0[sl] = ta.RL0 + lpos
            self.RS0[sl] = ta.RS0
            self.RUNDER[sl] = ta.RUNDER
            self.RNODE[sl] = np.where(ta.RNODE >= 0, ta.RNODE + npos, -1)
            self.RFPC[sl] = ta.RFPC
            self.LLAT[lpos:lpos + ta.nloads] = ta.LLAT
            self.LFWD[lpos:lpos + ta.nloads] = ta.LFWD
            if ta.nnodes:
                nsl = slice(npos, npos + ta.nnodes)
                self.NODEPAR[nsl] = np.where(
                    ta.NODEPAR >= 0, ta.NODEPAR + npos, -1
                )
                self.NODERET[nsl] = ta.NODERET + boff
            rpos += ta.nrec
            lpos += ta.nloads
            npos += ta.nnodes

        # -- per-cell configuration
        cfg = [c.config for c in cells]
        self.width = np.array([c.fetch_width for c in cfg], i8)
        self.halfw = np.maximum(1, self.width // 2)
        self.maxb = np.array([c.max_branches_per_cycle for c in cfg], i8)
        self.depth = np.array([c.pipeline_depth for c in cfg], i8)
        self.rw = np.array([c.retire_width for c in cfg], i8)
        self.rob = np.array([c.rob_size for c in cfg], i8)
        self.stops = np.array(
            [int(c.fetch_stops_at_taken) for c in cfg], i8
        )
        self.isdual = np.array([c.mode == "dualpath" for c in cfg], bool)
        self.ispred = np.array(
            [c.mode in ("dmp", "dhp") for c in cfg], bool
        )
        self.anydp = bool(self.ispred.any())
        self.thresh = np.array([_jrs_threshold(c) for c in cfg], i8)
        self.boffs, self.roffs, self.rends = boffs, roffs, rends
        self.loffs, self.noffs = loffs, noffs

        # -- mutable per-cell state
        maxrob = int(self.rob.max())
        self.maxrob = maxrob
        maxstores = max([ta.nstores for ta, _ in t_list] + [0])
        self.sjunk = maxstores
        self.cycle = np.zeros(n, i8)
        self.slots = self.width.copy()
        self.branches = self.maxb.copy()
        self.dual = np.full(n, -1, i8)
        self.last = np.zeros(n, i8)
        self.cnt = np.zeros(n, i8)
        self.ghr = np.zeros(n, i8)
        self.cursor = roffs.copy()
        self.state = np.where(roffs < rends, _TRACE, _DONE).astype(i8)
        self.RR = np.zeros((n, JREG + 1), i8)
        self.RING = np.zeros((n, maxrob + 1), i8)
        self.SREADY = np.zeros((n, maxstores + 1), i8)
        # Predicated-store state (dmp/dhp episodes only): the cycle each
        # store's guarding predicate resolves, by global store ordinal.
        # 0 is the "not predicated / resolved" sentinel — real episode
        # resolutions are always > 0 — so the vector load rule
        # ``base >= pready ? forward : wait`` degenerates to the plain
        # forward for every main-path store.
        self.SPREADYP = np.zeros((n, maxstores + 1), i8)
        self.spid: List[Dict[int, int]] = [{} for _ in range(n)]
        self.pcnt = [0] * n
        self.W = np.zeros((n, _NPERC, _HBITS + 1), np.int16)
        self.JRS = np.zeros((n, _JTAB), np.int16)
        nsites = max(pa.nsites for pa in p_list)
        self.sitejunk = nsites
        self.BTBSEEN = np.zeros((n, nsites + 1), bool)
        # stats counters
        self.FC = np.zeros(n, i8)
        self.EX = np.zeros(n, i8)
        self.RB = np.zeros(n, i8)
        self.MP = np.zeros(n, i8)
        self.FL = np.zeros(n, i8)
        self.CD = np.zeros(n, i8)
        self.CI = np.zeros(n, i8)
        self.FORKS = np.zeros(n, i8)
        # dmp/dhp episode counters (all zero for other modes).
        self.DPE = np.zeros(n, i8)
        self.XU = np.zeros(n, i8)
        self.SU = np.zeros(n, i8)
        self.PF = np.zeros(n, i8)
        self.LW = np.zeros(n, i8)
        self.EC = np.zeros((n, 7), i8)  # Table 1 exit cases, keys 1..6

        # Python-native copies of every table the scalar epilogue/walk
        # path touches: list indexing is ~5x cheaper than numpy scalar
        # extraction, and the walks are the only per-cell (rather than
        # per-step) cost the engine has left.
        self.pNROWS = self.NROWS.tolist()
        self.pFPC = self.FPC.tolist()
        self.pTERM = self.TERM.tolist()
        self.pTAKEN = self.TAKEN.tolist()
        self.pFALL = self.FALL.tolist()
        self.pTARGET = self.TARGET.tolist()
        self.pCALLEE = self.CALLEE.tolist()
        self.pPCT = self.PCT.tolist()
        self.pRECONV = self.RECONV.tolist()
        self.pNODERET = self.NODERET.tolist()
        self.pNODEPAR = self.NODEPAR.tolist()
        self.pRFPC = self.RFPC.tolist()
        self.pRNODE = self.RNODE.tolist()
        self.prends = self.rends.tolist()
        self.pwidth = self.width.tolist()
        self.phalfw = self.halfw.tolist()
        self.pmaxb = self.maxb.tolist()
        self.pstops = self.stops.tolist()
        self.pRL0 = self.RL0.tolist()
        self.pRS0 = self.RS0.tolist()
        self.pLLAT = self.LLAT.tolist()
        self.pLFWD = self.LFWD.tolist()
        # Per-block row tuples: (kind, latency, max(latency, 1),
        # dest or -1, srcs, load ordinal, store ordinal) — the scalar
        # BlockPlan row with the JREG/ZREG vector padding stripped, for
        # the step loop's scalar row tail and the dpred episodes.
        rk = self.RKIND.tolist()
        rl = self.RLAT.tolist()
        rd = self.RDEST.tolist()
        rs = self.RSRC.tolist()
        lo = self.RLORD.tolist()
        so = self.RSTORD.tolist()
        self.pROWS = [
            [
                (
                    rk[gb][i],
                    rl[gb][i],
                    rl[gb][i] if rl[gb][i] > 1 else 1,
                    rd[gb][i] if rd[gb][i] < ZREG else -1,
                    tuple(s for s in rs[gb][i] if s != ZREG),
                    lo[gb][i],
                    so[gb][i],
                )
                for i in range(self.pNROWS[gb])
            ]
            for gb in range(nblk)
        ]
        # Registers a block renames (for the episodes' select-uop set:
        # one update per block instead of one set.add per row).
        self.pDESTS = [
            tuple({r[3] for r in rows if r[3] >= 0}) for rows in self.pROWS
        ]
        # Ring reads within one step are static (no row this step can
        # rewrite a slot a later row reads) whenever the step's row
        # count fits the smallest ROB — a per-step test in _trace_step
        # against this bound, so one rare long block (or a span macro)
        # can't push every step onto the masked per-row path.
        self.rob_min = int(self.rob.min())
        # Cells sharing a trace arena share its record offset; that
        # offset keys the per-step structural walk cache (_WalkPath).
        self.ptgid = self.roffs.tolist()
        self._walk_cache: Dict[tuple, _WalkPath] = {}
        # Per-block compiled row loops (see _compile_row_loop), built
        # lazily for blocks the scalar tail / episodes actually touch.
        self._tailfns: Dict[int, Any] = {}
        self._epfns: Dict[int, Any] = {}
        self._stfns: Dict[int, Any] = {}
        # Weight-divergence epochs.  Cells over one trace keep identical
        # predictor state (weights, GHR, JRS) until a dpred episode's
        # *outcome* first differs between them — training inputs are
        # trace-determined, and an episode's training is pinned by its
        # inputs plus (exit case, continuation, outgoing GHR).  Each
        # episode therefore chains an interned signature into the cell's
        # epoch; equal epochs mean bit-equal predictor state, letting
        # predicated cells share structural walks just like plain ones.
        self.pepoch = [0] * n
        self._episigs: Dict[tuple, int] = {}
        # Ganged-episode accounting (see repro.uarch.batch.gang).
        self.gang_count = 0
        self.gang_lanes = 0
        self.gang_singletons = 0
        self.gang_max = 0
        self._run_gangs = None
        # Wall-time phase attribution for ``run_batch(profile=...)``:
        # the scalar-tail sections are timed in place (two clock reads
        # per resolution step at most), the step loop by subtraction.
        self._prof = {"episode_tails": 0.0, "scalar_walks": 0.0}

        # 4-byte timing lanes.  One instruction can push the fetch
        # cycle forward by at most depth + max-latency + 2, so a loose
        # per-cell bound on the final cycle is records * rows * that;
        # when it clears int32 (any realistic trace does, by orders of
        # magnitude) the timing state and latency tables shrink to
        # 4 bytes, halving the memory traffic of the per-row vector
        # work — which is where the engine spends its time at scale.
        # Index/identity arrays (cursors, ring indices, ghr) stay int64.
        maxlat = int(max(
            self.RLAT.max(), self.BRLAT.max(), self.LLAT.max()
        ))
        step = int(self.depth.max()) + maxlat + 2
        # rawL, not the macro-extended L: a span macro's rows cover as
        # many records as the span merged, so per *record* the raw
        # maximum still bounds the advance (and the final cycle is
        # unchanged by construction).
        bound = int((rends - roffs).max()) * (
            (rawL + 2) * step
            + int(self.REXTRA.max()) + int(self.RUNDER.max()) * step + 2
        )
        if self.anydp:
            # A dpred episode can overshoot its record's own accounting
            # by at most one more block + redirect tail before the
            # resolution check stops the path: double the slack.
            bound *= 2
        if 0 < bound < 2**31 - 2:
            for name in (
                "RLAT", "BRLAT", "LLAT", "REXTRA", "RUNDER",
                "width", "halfw", "maxb", "depth", "rw", "stops",
                "cycle", "slots", "branches", "dual", "last", "cnt",
                "RR", "RING", "SREADY", "SPREADYP",
            ):
                setattr(self, name, getattr(self, name).astype(np.int32))

        # -- dynamic-predication static tables (dmp/dhp cells only)
        self.pispred = self.ispred.tolist()
        self.HASH = np.zeros((n, max(nblk, 1)), bool)
        self.cfms: List[Dict[int, tuple]] = [{} for _ in range(n)]
        if self.anydp:
            self._init_dpred(cells, cfg, nblk)

    def _init_dpred(self, cells, cfg, nblk: int) -> None:
        """Static tables for the dmp/dhp episode transcription.

        ``HASH[ci, gb]`` marks the diverge branches cell ``ci`` may
        predicate: block ``gb`` ends in a conditional branch whose PC has
        a non-loop entry in the cell's hint table (the scalar
        ``_maybe_enter_dpred`` hash lookup, hoisted to init time).
        ``cfms[ci][gb]`` is the episode's CFM-CAM content for that
        branch.  The python-native row tables mirror the walk-path
        rationale above: episodes are scalar tails, and list indexing
        beats numpy scalar extraction several-fold there."""
        pBRPC = self.BRPC.tolist()
        for ci, cell in enumerate(cells):
            if not self.pispred[ci] or cell.hints is None:
                continue
            config = cfg[ci]
            b0 = int(self.boffs[ci])
            # Extended range: a span macro ending in a hinted diverge
            # branch enters episodes exactly like its final raw block
            # (its BRPC *is* that block's).
            for lb in range(self.pblkn[ci]):
                gb = b0 + lb
                if self.pTERM[gb] != TERM_BR:
                    continue
                hint = cell.hints.get(pBRPC[gb])
                if hint is None or hint.is_loop:
                    continue  # loop hints are scalar-only (envelope)
                self.HASH[ci, gb] = True
                if config.multiple_cfm:
                    self.cfms[ci][gb] = tuple(hint.cfm_pcs)[:8]
                else:
                    self.cfms[ci][gb] = (hint.primary_cfm,)
        self.pdepth = self.depth.tolist()
        self.prob = self.rob.tolist()
        self.prw = self.rw.tolist()
        self.pSITE = self.SITE.tolist()
        self.pNBODY = self.NBODY.tolist()
        self.pBRLAT = self.BRLAT.tolist()
        self.pJPC = self.JPC.tolist()
        self.pRECBLK = self.RECBLK.tolist()
        self.pREXTRA = self.REXTRA.tolist()
        self.pRTAKEN = self.RTAKEN.tolist()
        self.pRSEQ0 = self.RSEQ0.tolist()
        self.pRUNDER = self.RUNDER.tolist()
        self.pBRSRC = [
            tuple(s for s in row if s != ZREG)
            for row in self.BRSRC.tolist()
        ]
        self.pplimit = [c.dpred_path_limit for c in cfg]
        self.pghrpred = [
            c.dpred_ghr_policy == "predicted" for c in cfg
        ]

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------

    def run(self) -> List[SimStats]:
        state = self.state
        while True:
            vc = np.nonzero(state == _TRACE)[0]
            if not vc.size:
                break
            self._trace_step(vc)
        return self._finalize()

    def _finalize(self) -> List[SimStats]:
        cycles = np.maximum(self.last, self.cycle)
        out = []
        for ci, cell in enumerate(self.cells):
            stats = SimStats(
                benchmark=cell.benchmark or cell.trace.program_name,
                config_description=cell.config.describe(),
            )
            stats.cycles = int(cycles[ci])
            stats.retired_instructions = cell.trace.instruction_count
            stats.retired_branches = int(self.RB[ci])
            stats.mispredictions = int(self.MP[ci])
            stats.pipeline_flushes = int(self.FL[ci])
            stats.fetched_correct = int(self.FC[ci])
            stats.fetched_wrong_cd = int(self.CD[ci])
            stats.fetched_wrong_ci = int(self.CI[ci])
            stats.executed_instructions = int(self.EX[ci])
            stats.dualpath_forks = int(self.FORKS[ci])
            stats.dpred_entries = int(self.DPE[ci])
            stats.extra_uops = int(self.XU[ci])
            stats.select_uops = int(self.SU[ci])
            stats.predicated_false_instructions = int(self.PF[ci])
            stats.load_wait_on_predicate = int(self.LW[ci])
            ec = self.EC[ci]
            for case in range(1, 7):
                if ec[case]:
                    stats.exit_cases[case] += int(ec[case])
            out.append(stats)
        return out

    # ------------------------------------------------------------------
    # TRACE step: one record per cell
    # ------------------------------------------------------------------

    def _trace_step(self, vc: np.ndarray) -> None:
        cur = self.cursor[vc]
        # Horizon skip-ahead: fetch the span block covering the quiet
        # run starting at the cursor (the record's own block outside any
        # span).  All row-position state below (seq0, load/store bases,
        # icache stall) belongs to the span *start*; everything about
        # the terminator (taken bit, RAS underflow, call node, cursor
        # advance) belongs to the span *end* record ``cure``.
        b = self.SPANBLK[cur]
        cure = self.SPANLAST[cur]
        k = self.NBODY[b]
        # Sort lanes by body length: every per-row op below then runs on
        # exactly the suffix of lanes whose record still has row i, so
        # the loop performs sum(k) lane-row updates instead of kmax * m
        # masked ones (mixed traces make kmax ~3x the mean k), and no
        # activity masks or junk scatter columns are needed at all.
        if vc.size > 1:
            order = np.argsort(k, kind="stable")
            vc = vc[order]
            cur = cur[order]
            cure = cure[order]
            b = b[order]
            k = k[order]
        extra = self.REXTRA[cur]
        c = self.cycle[vc]
        s = self.slots[vc]
        bl = self.branches[vc]
        d = self.dual[vc]
        w = self.width[vc]
        hw = self.halfw[vc]
        mb = self.maxb[vc]
        dep = self.depth[vc]
        rob = self.rob[vc]
        rw = self.rw[vc]
        last = self.last[vc]
        cnt = self.cnt[vc]
        seq0 = self.RSEQ0[cur]
        isbr = self.TERM[b] == TERM_BR

        # Inlined _advance_fetch_cycle(cycle + extra) for the icache
        # stall (extra >= 10 when it fires, so max(cycle+1, ...) is it).
        icadv = extra > 0
        c = np.where(icadv, c + extra, c)
        s = np.where(icadv, np.where(c <= d, hw, w), s)
        bl = np.where(icadv, mb, bl)

        # -- body rows: the reference's inlined per-row sequence, with
        # lane-suffix views in place of branches.  All rows at position
        # i across the cells that have one advance together; the ring
        # reads this record makes were written >= rob_size instructions
        # ago whenever every ROB is at least one block deep
        # (ring_static), so no occupancy test is needed — unwritten
        # slots hold 0 and cycles are never negative.
        kmax = int(k[-1]) if k.size else 0
        any_dual = bool((d >= 0).any())
        m = vc.size
        i0 = kmax
        if kmax:
            pos = np.searchsorted(
                k, np.arange(kmax, dtype=np.int64), side="right"
            ).tolist()
            # Scalar row tail: past row i0 the active-lane suffix is so
            # narrow that numpy dispatch costs more than plain python.
            # Long blocks are rare but their rows dominate the loop's
            # iteration count, so the few lanes still fetching past i0
            # finish their block scalar — the same inlined per-row
            # sequence on ints, bit for bit.
            while i0 > 0 and m - pos[i0 - 1] <= _TAIL_LANES:
                i0 -= 1
        if i0:
            rob_live = int((seq0 + k).max()) >= int(rob.min())
            ring_static = kmax <= self.rob_min
            l0 = self.RL0[cur]
            st0 = self.RS0[cur]
            # One fancy gather per static table; the loop reads column
            # views.  Row-presence flags over the full column equal the
            # active-suffix flags because the table pads (KIND_ALU,
            # ZREG) can never flag a lane.
            rows = np.arange(i0, dtype=np.int64)
            if rob_live:
                seq_mod = (seq0[None, :] + rows[:, None]) % rob[None, :]
            else:
                seq_mod = seq0[None, :] + rows[:, None]
            # Ring-read strategy under the static window: one
            # rectangular pre-gather amortizes call overhead at narrow
            # widths, but wastes element work at wide ones (i0 * m can
            # run ~5x the true suffix sum when row counts are skewed),
            # so wide steps gather each row's live suffix lazily.
            ringm = None
            if rob_live and ring_static and m <= _RING_PREGATHER:
                ringm = self.RING[vc[None, :], seq_mod]
            RKb = self.RKIND[b, :i0]
            RLb = self.RLAT[b, :i0]
            RDb = self.RDEST[b, :i0]
            Sb = self.RSRC[b, :i0]
            presrow = np.bitwise_or.reduce(
                self.PRES[b, :i0], axis=0
            ).tolist()
            ldbit = 1 << self.K
            stbit = ldbit << 1
            if any(pr & ldbit for pr in presrow):
                LOb = self.RLORD[b, :i0]
            if any(pr & stbit for pr in presrow):
                STOb = self.RSTORD[b, :i0]
        for i in range(i0):
            p = pos[i]
            cv = c[p:]
            sv = s[p:]
            blv = bl[p:]
            dv = d[p:]
            wv = w[p:]
            hwv = hw[p:]
            mbv = mb[p:]
            vcv = vc[p:]
            if rob_live:
                if ringm is not None:
                    ring = ringm[i, p:]
                elif ring_static:
                    # No occupancy mask needed: below the static bound
                    # an unoccupied slot can have had no same-step
                    # writer, still holds its initial 0, and 0 can
                    # never stall a non-negative cycle.
                    ring = self.RING[vcv, seq_mod[i, p:]]
                else:
                    occ = seq0[p:] + i >= rob[p:]
                    ring = np.where(
                        occ, self.RING[vcv, seq_mod[i, p:]], 0
                    )
                stall = cv < ring
                if stall.any():
                    np.copyto(cv, ring, where=stall)
                    if any_dual:
                        np.copyto(
                            sv, np.where(cv <= dv, hwv, wv), where=stall
                        )
                    else:
                        np.copyto(sv, wv, where=stall)
                    np.copyto(blv, mbv, where=stall)
            nos = sv <= 0
            cv += nos
            if any_dual:
                np.copyto(sv, np.where(cv <= dv, hwv, wv), where=nos)
            else:
                np.copyto(sv, wv, where=nos)
            np.copyto(blv, mbv, where=nos)
            sv -= 1
            ready = None
            pres = presrow[i]
            for j in range(self.K):
                if pres >> j & 1:
                    r = self.RR[vcv, Sb[p:, i, j]]
                    if ready is None:
                        ready = r
                    else:
                        np.maximum(ready, r, out=ready)
            if ready is None:
                base = cv + dep[p:]
            else:
                base = np.maximum(ready, cv + dep[p:], out=ready)
            comp = base + RLb[p:, i]
            if pres & ldbit:
                isld = RKb[p:, i] == KIND_LOAD
                lidx = l0[p:] + LOb[p:, i]
                fwd = self.LFWD[lidx]
                hasf = fwd >= 0
                fcol = np.where(hasf, fwd, self.sjunk)
                sready = self.SREADY[vcv, fcol]
                fcomp = np.maximum(base, sready) + 1
                if self.anydp:
                    # Forwarding from a store whose guarding predicate
                    # is still unresolved at fetch waits for it instead
                    # (main-path loads carry no predicate, so the
                    # pid-match forward can never apply here).
                    pready = self.SPREADYP[vcv, fcol]
                    wait = isld & hasf & (base < pready)
                    if wait.any():
                        np.copyto(fcomp, pready + 2, where=base < pready)
                        self.LW[vcv[wait]] += 1
                comp = np.where(
                    isld,
                    np.where(hasf, fcomp, base + self.LLAT[lidx]),
                    comp,
                )
            if pres & stbit:
                isst = RKb[p:, i] == KIND_STORE
                np.copyto(comp, base + 1, where=isst)
                scol = np.where(isst, st0[p:] + STOb[p:, i], self.sjunk)
                self.SREADY[vcv, scol] = comp
            self.RR[vcv, RDb[p:, i]] = comp
            # _retire, vectorized over the active suffix.
            lastv = last[p:]
            cntv = cnt[p:]
            # rc = max(comp+1, last), bumped a cycle when it lands on
            # last with the retire port full (cnt >= rw) — folding the
            # bump into the max's second operand is the same function.
            comp += 1
            rc = np.maximum(comp, lastv + (cntv >= rw[p:]), out=comp)
            adv = rc > lastv
            cntv += 1
            np.copyto(cntv, 1, where=adv)
            np.copyto(lastv, rc)
            self.RING[vcv, seq_mod[i, p:]] = rc
        if i0 < kmax:
            anydp = self.anydp
            pLFWD = self.pLFWD
            pLLAT = self.pLLAT
            pRL0 = self.pRL0
            pRS0 = self.pRS0
            SREADY = self.SREADY
            SPREADYP = self.SPREADYP if anydp else None
            fns = self._tailfns
            for t in range(pos[i0], m):
                ci = int(vc[t])
                bt = int(b[t])
                fn = fns.get(bt)
                if fn is None:
                    fn = fns[bt] = _compile_row_loop(
                        self.pROWS[bt], int(k[t]), "tail", anydp
                    )
                curt = int(cur[t])
                rr = self.RR[ci].tolist()
                cyc, sl, blv, lastt, cntt, lwc = fn(
                    i0, pRL0[curt], pRS0[curt], int(c[t]), int(s[t]),
                    int(bl[t]), int(d[t]), int(w[t]), int(hw[t]),
                    int(mb[t]), int(dep[t]), int(rob[t]), int(rw[t]),
                    int(last[t]), int(cnt[t]), int(seq0[t]) + i0,
                    rr, self.RING[ci], SREADY[ci],
                    SPREADYP[ci] if anydp else None, pLFWD, pLLAT,
                )
                self.RR[ci] = rr
                if lwc:
                    self.LW[ci] += lwc
                c[t] = cyc
                s[t] = sl
                bl[t] = blv
                last[t] = lastt
                cnt[t] = cntt
        self.FC[vc] += k
        self.EX[vc] += k

        nonbr = ~isbr
        if nonbr.any():
            m = nonbr
            self._vector_transfer(
                vc[m], cure[m], b[m], c[m], s[m], bl[m], d[m], w[m],
                hw[m], mb[m], dep[m],
            )
            self.last[vc[m]] = last[m]
            self.cnt[vc[m]] = cnt[m]
        if isbr.any():
            m = isbr
            self._vector_branch(
                vc[m], cure[m], b[m], c[m], s[m], bl[m], d[m], w[m],
                hw[m], mb[m], dep[m], seq0[m] + k[m], rob[m], last[m],
                cnt[m], rw[m],
            )

    def _vector_transfer(self, vc, cur, b, c1, s1, b1, d, w, hw, mb, dep):
        """JMP/CALL/RET/NONE terminators for non-branch records."""
        term = self.TERM[b]
        isjc = (term == TERM_JMP) | (term == TERM_CALL)
        nadv = np.zeros(vc.size, self.width.dtype)
        if isjc.any():
            sitecol = np.where(isjc, self.SITE[b], self.sitejunk)
            seen = self.BTBSEEN[vc, sitecol]
            nadv = np.where(isjc, ~seen + self.stops[vc], 0)
            self.BTBSEEN[vc, sitecol] = True
        isrt = term == TERM_RET
        if isrt.any():
            # RAS underflow: advance(), then advance(cycle + depth) —
            # 1 + max(depth, 1) cycles in total.
            nadv = np.where(
                isrt, 1 + self.RUNDER[cur] * np.maximum(dep, 1), nadv
            )
        c2 = c1 + nadv
        moved = nadv > 0
        s2 = np.where(moved, np.where(c2 <= d, hw, w), s1)
        b2 = np.where(moved, mb, b1)
        self.cycle[vc] = c2
        self.slots[vc] = s2
        self.branches[vc] = b2
        self._advance_cursor(vc, cur)

    def _advance_cursor(self, vc, cur) -> None:
        nxt = cur + 1
        self.cursor[vc] = nxt
        self.state[vc] = np.where(nxt >= self.rends[vc], _DONE, _TRACE)

    def _predict(self, vc, idx, ghr):
        """Vector perceptron dot product; returns (output, taken)."""
        rows = self.W[vc, idx].astype(np.int64)
        bits = (ghr[:, None] >> np.arange(_HBITS)[None, :]) & 1
        x = 2 * bits - 1
        out = rows[:, 0] + (rows[:, 1:] * x).sum(axis=1)
        return out, out >= 0

    def _train(self, vc, idx, snap, out, pred, actual):
        """Vector perceptron train + clip (misp or weak output only)."""
        need = (pred != actual) | (np.abs(out) <= _THETA)
        if not need.any():
            return
        tc, ti = vc[need], idx[need]
        t = np.where(actual[need], 1, -1).astype(np.int16)
        rows = self.W[tc, ti]
        rows[:, 0] = np.clip(
            rows[:, 0].astype(np.int64) + t, _WMIN, _WMAX
        ).astype(np.int16)
        bits = (snap[need, None] >> np.arange(_HBITS)[None, :]) & 1
        delta = np.where(bits == 1, t[:, None], -t[:, None])
        rows[:, 1:] = np.clip(
            rows[:, 1:].astype(np.int64) + delta, _WMIN, _WMAX
        ).astype(np.int16)
        self.W[tc, ti] = rows

    def _vector_branch(self, vc, cur, b, c1, s1, b1, d, w, hw, mb, dep,
                       seqb, rob, last, cnt, rw):
        """The conditional-branch terminator: predict, fetch, resolve,
        train — vectorized; mispredictions and forks finish per cell."""
        # _fetch_slot(True): the ROB-window check first...
        occ = seqb >= rob
        if occ.any():
            ring = self.RING[vc, np.where(occ, seqb % rob, self.maxrob)]
            stall = occ & (c1 < ring)
            if stall.any():
                c1 = np.where(stall, ring, c1)
                s1 = np.where(stall, np.where(c1 <= d, hw, w), s1)
                b1 = np.where(stall, mb, b1)
        # ...then the slot / branch-budget advance.
        need = (s1 <= 0) | (b1 <= 0)
        fetchc = c1 + need
        sbr = np.where(need, np.where(fetchc <= d, hw, w), s1) - 1
        bbr = np.where(need, mb, b1) - 1
        self.FC[vc] += 1

        snap = self.ghr[vc]
        idx = self.PCT[b]
        out, pred = self._predict(vc, idx, snap)

        ready = self.RR[vc, self.BRSRC[b, 0]]
        for j in range(1, self.K):
            ready = np.maximum(ready, self.RR[vc, self.BRSRC[b, j]])
        base = np.maximum(fetchc + dep, ready)
        res = base + self.BRLAT[b]

        # Retire the branch row.
        rc = np.maximum(res + 1, last)
        rc = rc + ((rc == last) & (cnt >= rw))
        cnt = np.where(rc > last, 1, cnt + 1)
        last = rc
        self.RING[vc, seqb % rob] = rc
        self.last[vc] = last
        self.cnt[vc] = cnt
        self.EX[vc] += 1
        self.RB[vc] += 1

        ghr_new = ((snap << 1) | pred) & _M31
        jidx = (self.JPC[b] ^ (snap & _JHMASK)) & (_JTAB - 1)
        conf = self.JRS[vc, jidx] >= self.thresh[vc]
        actual = self.RTAKEN[cur].astype(bool)
        misp = pred != actual
        self._train(vc, idx, snap, out, pred, actual)
        jv = self.JRS[vc, jidx]
        self.JRS[vc, jidx] = np.where(
            misp, 0, np.minimum(jv + 1, _JMAX)
        ).astype(np.int16)

        fork = (
            self.isdual[vc] & ~conf & (fetchc > d)
            & (np.abs(out) <= _THETA // 4)
        )
        site = self.SITE[b]
        if self.anydp:
            # Dpred entry: a hinted (non-loop) diverge branch with a
            # low-confidence prediction.  The scalar flow reads the JRS
            # *before* training it, exactly as `conf` above was read.
            dpe = self.HASH[vc, b] & ~conf
            inline = (fork | misp) & ~dpe
        else:
            dpe = None
            inline = fork | misp

        ok = ~inline if dpe is None else ~(inline | dpe)
        if ok.any():
            oc = vc[ok]
            taken = pred[ok]
            nadv = np.zeros(oc.size, self.width.dtype)
            if taken.any():
                sitecol = np.where(taken, site[ok], self.sitejunk)
                seen = self.BTBSEEN[oc, sitecol]
                nadv = np.where(taken, ~seen + self.stops[oc], 0)
                self.BTBSEEN[oc, sitecol] = True
            c2 = fetchc[ok] + nadv
            moved = nadv > 0
            self.cycle[oc] = c2
            self.slots[oc] = np.where(
                moved, np.where(c2 <= d[ok], hw[ok], w[ok]), sbr[ok]
            )
            self.branches[oc] = np.where(moved, mb[ok], bbr[ok])
            self.ghr[oc] = ghr_new[ok]
            self._advance_cursor(oc, cur[ok])

        if inline.any():
            # Mispredictions and dual-path forks walk the wrong path
            # synchronously per cell (exact scalar transcription).  The
            # structural-walk cache holds for exactly one resolution
            # step: _train just ran, so the weights it snapshots stay
            # untouched until the next _vector_branch call.
            self._walk_cache.clear()
            t0 = perf_counter()
            sel = np.nonzero(inline)[0]
            ic = vc[sel]
            outs = [
                self._branch_epilogue(*args)
                for args in zip(
                    ic.tolist(), cur[sel].tolist(), b[sel].tolist(),
                    fetchc[sel].tolist(), sbr[sel].tolist(),
                    bbr[sel].tolist(), res[sel].tolist(),
                    snap[sel].tolist(), pred[sel].tolist(),
                    actual[sel].tolist(), fork[sel].tolist(),
                    site[sel].tolist(), self.dual[ic].tolist(),
                )
            ]
            c2, s2, b2, g2, d2, mp, fl, fk, cd, cik = zip(*outs)
            self.cycle[ic] = c2
            self.slots[ic] = s2
            self.branches[ic] = b2
            self.ghr[ic] = g2
            self.dual[ic] = d2
            self.MP[ic] += np.asarray(mp)
            self.FL[ic] += np.asarray(fl)
            self.FORKS[ic] += np.asarray(fk)
            self.CD[ic] += np.asarray(cd)
            self.CI[ic] += np.asarray(cik)
            self._advance_cursor(ic, cur[sel])
            self._prof["scalar_walks"] += perf_counter() - t0

        if dpe is not None and dpe.any():
            # Dynamic-predication episodes run synchronously per cell
            # (exact scalar transcription, like the walks above) and may
            # jump the cursor forward over the records their predicated
            # paths fetched.
            t0 = perf_counter()
            sel = np.nonzero(dpe)[0]
            dc = vc[sel]
            lanes = list(
                zip(
                    dc.tolist(), cur[sel].tolist(), b[sel].tolist(),
                    fetchc[sel].tolist(), sbr[sel].tolist(),
                    bbr[sel].tolist(), res[sel].tolist(),
                    snap[sel].tolist(), pred[sel].tolist(),
                    actual[sel].tolist(), d[sel].tolist(),
                    (seqb[sel] + 1).tolist(),
                )
            )
            rg = self._run_gangs
            if rg is None:
                # Deferred import: gang.py imports this module's scalar
                # episode machinery back.
                from repro.uarch.batch.gang import run_gangs as rg
                self._run_gangs = rg
            outs = rg(self, lanes)
            c2, s2, b2, g2, cont = zip(*outs)
            self.cycle[dc] = c2
            self.slots[dc] = s2
            self.branches[dc] = b2
            self.ghr[dc] = g2
            nxt = np.asarray(cont)
            self.cursor[dc] = nxt
            self.state[dc] = np.where(
                nxt >= self.rends[dc], _DONE, _TRACE
            )
            self._prof["episode_tails"] += perf_counter() - t0

    # ------------------------------------------------------------------
    # Scalar branch epilogue: misprediction flush / dual-path fork
    # ------------------------------------------------------------------

    def _branch_epilogue(self, ci, cur, b, fetchc, s, bl, res, snap,
                         pred, actual, fork, site, dual):
        """Misprediction flush / dual-path fork for one cell.

        Pure in the fetch state: takes and returns plain ints so the
        caller can scatter every inline cell back to the state arrays in
        one shot instead of a dozen single-element numpy writes per
        walker.  Returns ``(cycle, slots, branches, ghr, dual, mp, fl,
        forks, cd, ci)`` — the last five are counter deltas.  Only the
        seen-bit BTB is mutated in place."""
        ghr_new = ((snap << 1) | pred) & _M31
        reconv = self.pRECONV[b]
        node = self.pRNODE[cur]
        misp = pred != actual
        cd = cik = 0

        if fork:
            # _fork_dual_path: walk the not-predicted path, then restore
            # the saved fetch state (dual-path fetch is cycle-neutral).
            dual = res
            start = self.pFALL[b] if actual else self.pTAKEN[b]
            if start >= 0:
                _, cd, cik = self._scalar_walk(
                    ci, start, res, reconv, frozenset(), node,
                    fetchc, s, bl, dual, ghr_new,
                )
            c2, s2, b2 = fetchc, s, bl
            if misp:
                ghr_out = ((snap << 1) | int(actual)) & _M31
            else:
                ghr_out = ghr_new
                if pred:
                    # _taken_redirect (seen-bit BTB + stop-at-taken).
                    nadv = 0
                    if not self.BTBSEEN[ci, site]:
                        self.BTBSEEN[ci, site] = True
                        nadv += 1
                    nadv += self.pstops[ci]
                    if nadv:
                        c2 = fetchc + nadv
                        s2 = (
                            self.phalfw[ci] if c2 <= dual
                            else self.pwidth[ci]
                        )
                        b2 = self.pmaxb[ci]
            return (c2, s2, b2, ghr_out, dual, int(misp), 0, 1, cd, cik)

        # _mispredict_flush: walk the predicted (wrong) path, then
        # advance past resolution and repair the history.
        c2 = fetchc
        start = self.pTAKEN[b] if pred else self.pFALL[b]
        if start >= 0:
            stop = min(self.prends[ci], cur + 1 + _CI_LOOKAHEAD)
            upcoming = frozenset(self.pRFPC[cur + 1:stop])
            c2, cd, cik = self._scalar_walk(
                ci, start, res, reconv, upcoming, node,
                fetchc, s, bl, dual, ghr_new,
            )
        c2 = max(c2 + 1, res + 1)
        s2 = self.phalfw[ci] if c2 <= dual else self.pwidth[ci]
        ghr_out = ((snap << 1) | int(actual)) & _M31
        return (c2, s2, self.pmaxb[ci], ghr_out, dual, 1, 1, 0, cd, cik)

    # ------------------------------------------------------------------
    # Scalar dpred episode: exact transcription of _dpred_once_impl
    # ------------------------------------------------------------------

    def _dpred_epilogue(self, ci, cur, b, fetchc, sbr, bbr, res, snap,
                        pred, actual, dual, seq1):
        """One dynamic-predication episode for one dmp/dhp cell.

        Transcribes ``_dpred_once_impl`` for the vector envelope's plain
        machines (no early exit, multiple diverge, loop predication or
        selective update; watch_diverge is therefore always False and
        episodes never restart or nest).  The diverge branch's own
        fetch/retire/train/JRS-update already ran on the vector path in
        the scalar call order, and the top-level spec_update it skipped
        is recomputed here from ``snap``.  Returns ``(cycle, slots,
        branches, ghr, continuation)`` for the caller's scatter; all
        other state (registers, ring, store predicates, counters,
        weights, BTB seen-bits) is written back in place."""
        st = _EpState()
        st.ci = ci
        st.cycle = fetchc
        st.slots = sbr
        st.bl = bbr
        st.du = dual
        st.w = self.pwidth[ci]
        st.hw = self.phalfw[ci]
        st.mb = self.pmaxb[ci]
        st.depth = self.pdepth[ci]
        st.rob = self.prob[ci]
        st.rw = self.prw[ci]
        st.stops = self.pstops[ci]
        st.rr = self.RR[ci].tolist()
        st.ring = self.RING[ci]
        st.wr = []
        st.last = int(self.last[ci])
        st.cnt = int(self.cnt[ci])
        # The post-branch sequence number comes from the caller: with
        # horizon spans, ``cur`` is the span-*end* record while ``b``
        # covers the whole span, so pRSEQ0[cur] + pNROWS[b] would
        # double-count the merged records.
        st.seq = st.seq0 = seq1
        st.written = set()
        st.campcs = self.cfms[ci][b]
        st.camlock = None
        st.fc = st.ex = st.rb = st.mp = st.fl = 0
        st.cd = st.pf = st.lw = 0

        self.DPE[ci] += 1
        p1 = self.pcnt[ci]
        p2 = p1 + 1
        self.pcnt[ci] = p1 + 2
        xu = 1  # enter.pred.path uop (completion discarded)
        nsel = 0
        cp1_ready = list(st.rr)
        misp = pred != actual
        limit = self.pplimit[ci]

        # --- predicted path: restore(ghr1) + spec_update(pred), the
        # taken redirect, then trace (correct prediction) or static
        # (mispredicted) fetch under predicate p1.
        st.ghr = ((snap << 1) | (1 if pred else 0)) & _M31
        if pred:
            self._ep_taken_redirect(st, self.pSITE[b])
        if misp:
            start = self.pTAKEN[b] if pred else self.pFALL[b]
            pout = self._ep_static_path(
                st, start, self.pRNODE[cur], res, limit
            )
            ppos = -1
        else:
            pout, ppos = self._ep_trace_path(st, cur + 1, res, p1, limit)

        if pout != _P_CFM:
            # _exit_without_predicted_cfm: cases 5 / 6.
            if pout != _P_RESOLVED and st.cycle < res:
                self._ep_adv(st, res)
            if misp:
                ecase = 6  # FLUSH
                st.mp += 1
                st.fl += 1
                st.rr = list(cp1_ready)
                self._ep_adv(st, res + 1)
                ghr_out = ((snap << 1) | (1 if actual else 0)) & _M31
                cont = cur + 1
            else:
                ecase = 5  # CONTINUE_PREDICTED
                ghr_out = st.ghr
                cont = ppos
        else:
            # --- alternate path: checkpoint the predicted end, restore
            # the pre-branch registers, fetch the other direction under
            # predicate p2 (trace when mispredicted, static otherwise).
            predicted_ghr = st.ghr
            cp2_ready = list(st.rr)
            st.rr = list(cp1_ready)
            xu += 1  # enter.alternate.path
            st.ghr = ((snap << 1) | (0 if pred else 1)) & _M31
            if misp:
                aout, apos = self._ep_trace_path(
                    st, cur + 1, res, p2, limit
                )
            else:
                start = self.pFALL[b] if pred else self.pTAKEN[b]
                aout = self._ep_static_path(
                    st, start, self.pRNODE[ppos], res, limit
                )
                apos = -1
            if aout == _P_CFM:
                # Cases 1 / 2: normal exit with select-uops.  The select
                # set is the ascending union of registers renamed on
                # either path (fresh tags always differ; pre-episode M
                # bits never can, their mappings being equal).
                xu += 1  # exit.pred
                rr = st.rr
                cycle_d = st.cycle + st.depth
                selects = sorted(st.written)
                for a in selects:
                    sr = cp2_ready[a]
                    v = rr[a]
                    if v > sr:
                        sr = v
                    if res > sr:
                        sr = res
                    rr[a] = (cycle_d if cycle_d > sr else sr) + 1
                nsel = len(selects)
                if self.pghrpred[ci]:
                    ghr_out = predicted_ghr
                else:
                    ghr_out = st.ghr
                if misp:
                    ecase = 2  # NORMAL_MISPREDICTED
                    st.mp += 1  # eliminated: no flush
                    cont = apos
                else:
                    ecase = 1  # NORMAL_CORRECT
                    cont = ppos
            else:
                # RESOLVED / EXHAUSTED / LIMIT (early exit is outside
                # the envelope): cases 3 / 4.
                if st.cycle < res:
                    self._ep_adv(st, res)
                if misp:
                    ecase = 4  # CONTINUE_ALTERNATE
                    st.mp += 1  # eliminated: no flush
                    ghr_out = st.ghr
                    cont = apos
                else:
                    ecase = 3  # REDIRECT_TO_CFM
                    st.rr = list(cp2_ready)
                    ghr_out = predicted_ghr
                    self._ep_adv(st, None)
                    cont = ppos

        return self._ep_finish(
            ci, st, cur, b, pred, actual, snap, ecase, xu, nsel,
            ghr_out, cont,
        )

    def _ep_finish(self, ci, st, cur, b, pred, actual, snap, ecase, xu,
                   nsel, ghr_out, cont):
        """Episode tail shared by the scalar epilogue and the gang
        replay: scatter the per-cell state back, flush the ring span,
        intern the episode signature, accumulate the counters."""
        self.RR[ci] = st.rr
        # The episode's ring writes sit at consecutive sequence numbers;
        # flush just that circular span of the write log (a full
        # 513-slot row costs ~10us per episode, the typical span a
        # fraction of that).
        wr = st.wr
        nw = len(wr)
        rob = st.rob
        ring = st.ring
        if nw >= rob:
            b0 = st.seq0 + nw - rob
            for off in range(rob):
                ring[(b0 + off) % rob] = wr[nw - rob + off]
        elif nw:
            a0 = st.seq0 % rob
            end = a0 + nw
            if end <= rob:
                ring[a0:end] = wr
            else:
                ring[a0:rob] = wr[: rob - a0]
                ring[: end - rob] = wr[rob - a0:]
        self.last[ci] = st.last
        self.cnt[ci] = st.cnt
        self.EC[ci, ecase] += 1
        sigs = self._episigs
        skey = (
            self.pepoch[ci], cur, b, pred, actual, snap, ecase, cont,
            ghr_out,
        )
        eid = sigs.get(skey)
        if eid is None:
            eid = sigs[skey] = len(sigs) + 1
        self.pepoch[ci] = eid
        self.XU[ci] += xu
        self.SU[ci] += nsel
        self.FC[ci] += st.fc
        self.EX[ci] += st.ex
        self.RB[ci] += st.rb
        self.MP[ci] += st.mp
        self.FL[ci] += st.fl
        self.CD[ci] += st.cd
        self.PF[ci] += st.pf
        self.LW[ci] += st.lw
        return st.cycle, st.slots, st.bl, ghr_out, cont

    def _ep_adv(self, st: _EpState, to) -> None:
        """_advance_fetch_cycle."""
        c = st.cycle + 1
        if to is not None and to > c:
            c = to
        st.cycle = c
        st.slots = st.hw if c <= st.du else st.w
        st.bl = st.mb

    def _ep_taken_redirect(self, st: _EpState, site: int) -> None:
        """_taken_redirect under the seen-bit BTB model."""
        if not self.BTBSEEN[st.ci, site]:
            self.BTBSEEN[st.ci, site] = True
            self._ep_adv(st, None)
        if st.stops:
            self._ep_adv(st, None)

    def _ep_trace_path(self, st: _EpState, pos: int, res: int, pid: int,
                       limit: int):
        """_fetch_dpred_trace_path_fast with watch_diverge=False.
        Returns ``(outcome, position)`` — the CFM trace position or the
        stopped position.  Record-once holds: the caller resumes the
        main loop exactly past the records consumed here."""
        rend = self.prends[st.ci]
        fetched = 0
        while True:
            if pos >= rend:
                return _P_EXHAUSTED, pos
            fpc = self.pRFPC[pos]
            if (
                fpc == st.camlock if st.camlock is not None
                else fpc in st.campcs
            ):
                st.camlock = fpc
                return _P_CFM, pos
            if st.cycle >= res:
                return _P_RESOLVED, pos
            b = self.pRECBLK[pos]
            nr = self.pNROWS[b]
            if fetched + nr > limit:
                return _P_LIMIT, pos
            extra = self.pREXTRA[pos]
            if extra > 0:
                self._ep_adv(st, st.cycle + extra)
            if self.pTERM[b] == TERM_BR:
                self._ep_fetch_rows(st, pos, b, self.pNBODY[b], res, pid)
                self._ep_nested_branch(st, pos, b)
            else:
                self._ep_fetch_rows(st, pos, b, nr, res, pid)
                self._ep_transfer(st, pos, b)
            fetched += nr
            pos += 1

    def _ep_transfer(self, st: _EpState, pos: int, b: int) -> None:
        """_transfer_fast (JMP/CALL/RET/NONE) inside an episode."""
        term = self.pTERM[b]
        if term == TERM_NONE:
            return
        if term == TERM_RET:
            self._ep_adv(st, None)
            if self.pRUNDER[pos]:
                self._ep_adv(st, st.cycle + st.depth)
        else:  # JMP / CALL: the push is timing-free, the redirect isn't
            self._ep_taken_redirect(st, self.pSITE[b])

    def _ep_fetch_rows(self, st: _EpState, pos: int, b: int, nrows: int,
                       res: int, pid: int) -> None:
        """_fetch_trace_block_fast for an episode's on-trace block:
        predicated stores publish (ready, predicate-ready, pid) and
        predicated loads apply the forward/wait rule against them."""
        if not nrows:
            return
        fn = self._epfns.get(b)
        if fn is None:
            fn = self._epfns[b] = _compile_row_loop(
                self.pROWS[b], nrows, "ep"
            )
        ci = st.ci
        fn(
            st, self.pRL0[pos], self.pRS0[pos], res, pid,
            self.SREADY[ci], self.SPREADYP[ci], self.spid[ci],
            self.pLFWD, self.pLLAT,
        )
        st.written.update(self.pDESTS[b])
        st.fc += nrows
        st.ex += nrows

    def _ep_nested_branch(self, st: _EpState, pos: int, b: int) -> None:
        """_handle_nested_trace_branch with watch_diverge=False: predict,
        fetch/retire the branch row, train + JRS, then flush-and-repair
        (footnote 11) or taken-redirect inline."""
        ci = st.ci
        hist = st.ghr
        idx = self.pPCT[b]
        out = self._scalar_predict(self.W[ci, idx].tolist(), hist)
        prd = out >= 0
        # _fetch_branch_instruction: _fetch_slot(True) with the ROB
        # window check, then sources + retire.
        seq = st.seq
        rob = st.rob
        if seq >= rob:
            j = seq - rob
            sq0 = st.seq0
            oldest = st.wr[j - sq0] if j >= sq0 else st.ring[j % rob]
            if st.cycle < oldest:
                self._ep_adv(st, oldest)
        if st.slots <= 0 or st.bl <= 0:
            self._ep_adv(st, None)
        st.slots -= 1
        st.bl -= 1
        st.fc += 1
        base = st.cycle + st.depth
        for s_ in self.pBRSRC[b]:
            v = st.rr[s_]
            if v > base:
                base = v
        comp = base + self.pBRLAT[b]
        rc = comp + 1
        if rc < st.last:
            rc = st.last
        if rc == st.last:
            if st.cnt >= st.rw:
                rc += 1
                st.cnt = 0
        else:
            st.cnt = 0
        st.last = rc
        st.cnt += 1
        st.wr.append(rc)
        st.seq = seq + 1
        st.ex += 1
        st.rb += 1
        actual = bool(self.pRTAKEN[pos])
        misp = prd != actual
        st.ghr = ((hist << 1) | (1 if prd else 0)) & _M31
        self._ep_train(ci, idx, hist, out, prd, actual)
        jidx = (self.pJPC[b] ^ (hist & _JHMASK)) & (_JTAB - 1)
        jrow = self.JRS[ci]
        if misp:
            jrow[jidx] = 0
        else:
            v = int(jrow[jidx])
            if v < _JMAX:
                jrow[jidx] = v + 1
        if misp:
            st.mp += 1
            st.fl += 1
            self._ep_adv(st, comp + 1)
            st.ghr = ((hist << 1) | (1 if actual else 0)) & _M31
        elif prd:
            self._ep_taken_redirect(st, self.pSITE[b])

    def _ep_static_path(self, st: _EpState, cur: int, node: int,
                        res: int, limit: int) -> int:
        """_fetch_dpred_static_path_fast with watch_diverge=False: walk
        the static CFG behind the predictor under predicate FALSE.  No
        records are consumed, the sequence number stays frozen, and the
        predictor steers (plain cycle-end advances — the static walker
        never touches the BTB)."""
        local: List[int] = []
        fetched = 0
        while True:
            if cur < 0:
                return _P_EXHAUSTED
            fpc = self.pFPC[cur]
            if (
                fpc == st.camlock if st.camlock is not None
                else fpc in st.campcs
            ):
                st.camlock = fpc
                return _P_CFM
            if st.cycle >= res:
                return _P_RESOLVED
            if fetched + self.pNROWS[cur] > limit:
                return _P_LIMIT
            self._ep_static_block(st, cur)
            fetched += self.pNROWS[cur]
            term = self.pTERM[cur]
            if term == TERM_BR:
                hist = st.ghr
                out = self._scalar_predict(
                    self.W[st.ci, self.pPCT[cur]].tolist(), hist
                )
                prd = out >= 0
                st.ghr = ((hist << 1) | (1 if prd else 0)) & _M31
                if prd:
                    self._ep_adv(st, None)  # taken ends the cycle
                    cur = self.pTAKEN[cur]
                else:
                    cur = self.pFALL[cur]
            elif term == TERM_NONE:
                cur = self.pFALL[cur]
            else:
                self._ep_adv(st, None)  # jmp/call/ret redirect
                if term == TERM_JMP:
                    cur = self.pTARGET[cur]
                elif term == TERM_CALL:
                    fall = self.pFALL[cur]
                    if fall >= 0:
                        local.append(fall)
                    cur = self.pCALLEE[cur]
                else:  # TERM_RET: local shadow stack, then the
                    if local:  # architectural context chain
                        cur = local.pop()
                    elif node >= 0:
                        cur = self.pNODERET[node]
                        node = self.pNODEPAR[node]
                    else:
                        cur = -1

    def _ep_static_block(self, st: _EpState, cur: int) -> None:
        """_fetch_static_dpred_block_fast: predicate-FALSE instructions
        occupy fetch/window resources and rename, but never retire (the
        sequence number is frozen — they leave the window on predicate
        resolution, never blocking it)."""
        nr = self.pNROWS[cur]
        if not nr:
            return
        fn = self._stfns.get(cur)
        if fn is None:
            fn = self._stfns[cur] = _compile_static_block(
                self.pROWS[cur], self.pTERM[cur] == TERM_BR
            )
        seq = st.seq
        # seq is frozen here, so the window's oldest entry is one fixed
        # value (0 when the window isn't full: cycles are never negative
        # and the stall test stays false).
        if seq >= st.rob:
            j = seq - st.rob
            sq0 = st.seq0
            oldest = st.wr[j - sq0] if j >= sq0 else st.ring[j % st.rob]
        else:
            oldest = 0
        fn(st, oldest)
        st.written.update(self.pDESTS[cur])
        st.cd += nr
        st.ex += nr
        st.pf += nr

    def _ep_train(self, ci: int, idx: int, hist: int, out: int,
                  pred: bool, actual: bool) -> None:
        """Scalar perceptron train + clip (misp or weak output only)."""
        if pred == actual and (out if out >= 0 else -out) > _THETA:
            return
        lst = self.W[ci, idx].tolist()
        t = 1 if actual else -1
        v = lst[0] + t
        lst[0] = _WMAX if v > _WMAX else (_WMIN if v < _WMIN else v)
        for j in range(1, _HBITS + 1):
            v = lst[j] + (t if (hist >> (j - 1)) & 1 else -t)
            lst[j] = _WMAX if v > _WMAX else (_WMIN if v < _WMIN else v)
        self.W[ci, idx] = lst

    def _scalar_predict(self, row: List[int], ghr: int) -> int:
        out = row[0]
        for j in range(_HBITS):
            out += row[j + 1] if (ghr >> j) & 1 else -row[j + 1]
        return out

    def _extend_path(self, path: _WalkPath) -> bool:
        """Append one structural block to ``path``; False when the walk
        is exhausted (dead end or guard).  Mirrors the control-flow half
        of ``_walk_wrong_path_fast``: predict-directed branches, the
        local call stack, and the architectural return context."""
        cur = path.cur
        if cur < 0:
            return False
        path.guard += 1
        if path.guard > _WALK_GUARD:
            return False
        if not path.reached:
            fpc = self.pFPC[cur]
            if fpc == path.reconv or fpc in path.upcoming:
                path.reached = True
        nr = self.pNROWS[cur]
        term = self.pTERM[cur]
        isbr = term == TERM_BR
        bump = False
        if isbr:
            out = self._scalar_predict(
                path.weights[self.pPCT[cur]].tolist(), path.ghr
            )
            pr = out >= 0
            path.ghr = ((path.ghr << 1) | pr) & _M31
            if pr:
                bump = True
                cur = self.pTAKEN[cur]
            else:
                cur = self.pFALL[cur]
        elif term == TERM_NONE:
            cur = self.pFALL[cur]
        else:
            bump = True
            if term == TERM_JMP:
                cur = self.pTARGET[cur]
            elif term == TERM_CALL:
                fall = self.pFALL[cur]
                if fall >= 0:
                    path.local.append(fall)
                cur = self.pCALLEE[cur]
            else:  # TERM_RET
                if path.local:
                    cur = path.local.pop()
                elif path.node >= 0:
                    cur = self.pNODERET[path.node]
                    path.node = self.pNODEPAR[path.node]
                else:
                    cur = -1
        path.cur = cur
        path.blocks.append((nr, isbr, bump, path.reached))
        return True

    def _scalar_walk(self, ci: int, start: int, until: int, reconv: int,
                     upcoming, node: int, c: int, s: int, bl: int,
                     d: int, ghr: int):
        """Exact transcription of ``_walk_wrong_path_fast`` for one cell,
        split into the shared structural path (cached per resolution
        step, see :class:`_WalkPath`) and the per-cell timing replay
        below.  Only ``cycle`` and the CD/CI counters survive a walk —
        the epilogue overwrites slots, branch budget and history in both
        the flush and the fork case — so the replay returns
        ``(cycle, cd, ci)`` and nothing else, and follower cells never
        touch the predictor."""
        if c >= until:
            return c, 0, 0
        # Same-trace weight lockstep — the premise of sharing — holds
        # for predicated cells only until their episode outcomes first
        # diverge; the epoch chain (see __init__) tracks exactly that,
        # so dmp/dhp cells share walks with their epoch peers.
        if self.pispred[ci]:
            tgid = (self.ptgid[ci], self.pepoch[ci])
        else:
            tgid = self.ptgid[ci]
        key = (tgid, start, ghr, reconv, node, upcoming)
        path = self._walk_cache.get(key)
        if path is None:
            path = self._walk_cache[key] = _WalkPath(
                start, ghr, node, reconv, upcoming, self.W[ci]
            )
        hw = self.phalfw[ci]
        w = self.pwidth[ci]
        mb = self.pmaxb[ci]
        # Uniform fetch-width regime (dual window already over, or
        # outlasting the walk) makes the whole replay a function of the
        # relative budget — memoize it across the cells replaying this
        # path.
        if d < c:
            rkey = (until - c, s, bl, w, mb)
        elif d >= until + 2:
            rkey = (until - c, s, bl, hw, mb)
        else:
            rkey = None
        if rkey is not None:
            hit = path.replays.get(rkey)
            if hit is not None:
                dc, rcd, rci = hit
                return c + dc, rcd, rci
        c0 = c
        blocks = path.blocks
        nblocks = len(blocks)
        cd = cik = 0
        i = 0
        while c < until:
            if i >= nblocks:
                if not self._extend_path(path):
                    break
                nblocks += 1
            nr, isbr, bump, reached = blocks[i]
            i += 1
            # Fetch-width regime for this block: the dual-path window
            # either expired already (full width) or outlasts the whole
            # walk (half width, c never exceeds until + 2 here); only a
            # window expiring mid-walk needs the per-instruction loop.
            if d < c:
                W = w
            elif d >= until + 2:
                W = hw
            else:
                W = 0
            if W:
                # Closed-form slot accounting: n body instructions
                # consume the current cycle's leftover slots, then whole
                # refilled cycles of W, cut off once the refill reaches
                # `until` (the cycle that lands on `until` still issues
                # its first instruction — the bound is checked before
                # each instruction, after the refill).
                n = nr - 1 if isbr else nr
                took = n if s >= n else s
                rem = n - took
                s -= took
                if rem:
                    nbf = (rem + W - 1) // W
                    t1 = until - c - 1
                    if nbf > t1:
                        nbf = t1
                    cons = nbf * W
                    if cons > rem:
                        cons = rem
                    if nbf:
                        c += nbf
                        s = nbf * W - cons
                        bl = mb
                        took += cons
                        rem -= cons
                    if rem and c < until:
                        c += 1
                        s = W - 1
                        bl = mb
                        took += 1
                if isbr and c < until:
                    if s <= 0 or bl <= 0:
                        c += 1
                        s = W
                        bl = mb
                    bl -= 1
                    s -= 1
                    took += 1
            else:
                took = 0
                for j in range(nr):
                    if c >= until:
                        break
                    if isbr and j == nr - 1:
                        if s <= 0 or bl <= 0:
                            c += 1
                            s = hw if c <= d else w
                            bl = mb
                        bl -= 1
                    elif s <= 0:
                        c += 1
                        s = hw if c <= d else w
                        bl = mb
                    s -= 1
                    took += 1
            if reached:
                cik += took
            else:
                cd += took
            if bump:
                c += 1
                s = hw if c <= d else w
                bl = mb
        if rkey is not None:
            path.replays[rkey] = (c - c0, cd, cik)
        return c, cd, cik
