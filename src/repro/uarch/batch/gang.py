"""Ganged-episode kernels for the batch engine's dpred episodes.

On a config-grid sweep, many lanes reach the same diverge branch at the
same record with bit-equal predictor state: cells over one trace share
weights, history and JRS until an episode *outcome* first differs (the
weight-divergence epoch argument in ``engine._Group``), so lanes whose
``(trace, epoch, record, branch, prediction, outcome, history snapshot,
CFM set)`` agree are about to run the *structurally identical* episode —
same predicted path, same alternate path, same nested-branch
predictions, same training — differing only in per-lane timing (cycle,
fetch slots, register-ready file, ROB occupancy, path-length budgets).

A :class:`EpisodeGang` runs that episode once *structurally* and many
times *temporally*: the gang lazily materialises a shared skeleton of
path steps (one per trace record or static block), computing each
prediction, perceptron train, JRS update and BTB seen-bit transition
exactly once, while every lane replays the skeleton's timing against
its own :class:`~repro.uarch.batch.engine._EpState` through the same
exec-compiled row kernels the scalar episode path uses.  Per-lane stop
conditions (branch resolution reached, path-length limit) simply cut
the replay short — a lane stopping at step ``k`` has applied exactly
the first ``k`` predictor transitions, which is what the scalar flow
would have done.

Shared predictor reads go through overlay dicts (weights rows, JRS
counters, BTB seen-bits) shadowing the first lane's live arrays: every
entry the episode mutates is in the overlay before any lane's replay
can write it back, so skeleton extension never observes a replay's
in-place writes.

Singleton lanes (a signature no other lane shares this resolution
step) fall back to the scalar ``_dpred_epilogue`` — surfaced in the
``gang_stats`` accounting rather than silently folded in.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.uarch.batch.engine import (
    _EpState,
    _HBITS,
    _JHMASK,
    _JMAX,
    _JTAB,
    _M31,
    _P_CFM,
    _P_EXHAUSTED,
    _P_LIMIT,
    _P_RESOLVED,
    _THETA,
    _WMAX,
    _WMIN,
    _compile_row_loop,
    _compile_static_block,
)
from repro.uarch.plan import (
    TERM_BR,
    TERM_CALL,
    TERM_JMP,
    TERM_NONE,
    TERM_RET,
)


class _TraceSkel:
    """Shared on-trace path: one step per consumed record.

    ``steps[k]`` replays record ``pos0 + k``; ``cum[k]`` is the fetched
    row count *after* step ``k`` (the scalar limit check ``fetched + nr
    > limit`` is ``cum[k] > limit``); ``ghr_after[k]`` the history after
    the step, mispredict repair included.  ``term`` is set when the next
    position is a CAM hit or the trace end — steps never extend past
    it."""

    __slots__ = (
        "steps", "cum", "ghr_after", "ghr", "ghr0", "pos0", "pos",
        "term", "wset",
    )

    def __init__(self, pos0: int, ghr0: int) -> None:
        self.steps: List[tuple] = []
        self.cum: List[int] = []
        self.ghr_after: List[int] = []
        self.ghr = self.ghr0 = ghr0
        self.pos0 = self.pos = pos0
        self.term: Optional[Tuple[int, int]] = None
        self.wset: set = set()


class _StaticSkel:
    """Shared static (predicate-FALSE) path: one step per walked block,
    steered by the shared predictor state; carries the local shadow
    stack and the architectural return context like the scalar
    walker."""

    __slots__ = (
        "steps", "cum", "ghr_after", "ghr", "ghr0", "cur", "local",
        "node", "term", "wset",
    )

    def __init__(self, cur: int, ghr0: int, node: int) -> None:
        self.steps: List[tuple] = []
        self.cum: List[int] = []
        self.ghr_after: List[int] = []
        self.ghr = self.ghr0 = ghr0
        self.cur = cur
        self.local: List[int] = []
        self.node = node
        self.term: Optional[int] = None
        self.wset: set = set()


class EpisodeGang:
    """One shared episode structure, replayed per lane.

    Construction freezes the shared facts (diverge branch, prediction,
    outcome, history snapshot, CFM CAM) from the first lane; the
    predicted skeleton starts empty and grows on demand as lanes replay
    past its end.  The alternate skeleton appears when the first lane's
    predicted path reaches its CFM (its static start node depends on the
    shared CFM trace position)."""

    __slots__ = (
        "G", "cur", "b", "pred", "actual", "snap", "misp", "ci0",
        "rend", "Wov", "Jov", "Bov", "camlock", "campcs", "pskel",
        "askel", "selects", "site0", "newsite0", "ghr1", "ghr2",
    )

    def __init__(self, G, lane0) -> None:
        (ci0, cur, b, _fc, _s, _b2, _res, snap, pred, actual,
         _d, _q) = lane0
        self.G = G
        self.ci0 = ci0
        self.cur = cur
        self.b = b
        self.pred = pred
        self.actual = actual
        self.snap = snap
        self.misp = pred != actual
        self.rend = G.prends[ci0]
        self.campcs = G.cfms[ci0][b]
        self.camlock = None
        self.Wov: Dict[int, List[int]] = {}
        self.Jov: Dict[int, int] = {}
        self.Bov: Dict[int, bool] = {}
        self.selects: Optional[List[int]] = None
        self.ghr1 = ((snap << 1) | (1 if pred else 0)) & _M31
        self.ghr2 = ((snap << 1) | (0 if pred else 1)) & _M31
        self.site0 = G.pSITE[b]
        self.newsite0 = self._btb_new(self.site0) if pred else False
        if self.misp:
            start = G.pTAKEN[b] if pred else G.pFALL[b]
            self.pskel = _StaticSkel(start, self.ghr1, G.pRNODE[cur])
        else:
            self.pskel = _TraceSkel(cur + 1, self.ghr1)
        self.askel = None

    # -- shared predictor state, through the overlays ------------------

    def _wrow(self, idx: int) -> List[int]:
        row = self.Wov.get(idx)
        if row is None:
            row = self.G.W[self.ci0, idx].tolist()
        return row

    def _train(self, idx: int, hist: int, out: int, prd: bool,
               actual: bool):
        """Scalar perceptron train against the overlay; returns the
        trained row for the per-lane scatter, or None when training
        does not fire."""
        if prd == actual and (out if out >= 0 else -out) > _THETA:
            return None
        row = list(self._wrow(idx))
        t = 1 if actual else -1
        v = row[0] + t
        row[0] = _WMAX if v > _WMAX else (_WMIN if v < _WMIN else v)
        for j in range(1, _HBITS + 1):
            v = row[j] + (t if (hist >> (j - 1)) & 1 else -t)
            row[j] = _WMAX if v > _WMAX else (_WMIN if v < _WMIN else v)
        self.Wov[idx] = row
        return row

    def _jrs(self, jidx: int, misp: bool) -> int:
        if misp:
            jnew = 0
        else:
            v = self.Jov.get(jidx)
            if v is None:
                v = int(self.G.JRS[self.ci0][jidx])
            jnew = v + 1 if v < _JMAX else v
        self.Jov[jidx] = jnew
        return jnew

    def _btb_new(self, site: int) -> bool:
        """Whether a taken redirect to ``site`` misses the seen-bit BTB
        at this point of the episode; marks it seen either way."""
        if site in self.Bov:
            return False
        self.Bov[site] = True
        return not self.G.BTBSEEN[self.ci0, site]

    # -- skeleton extension (structural, one step at a time) -----------

    def _extend_trace(self, sk: _TraceSkel) -> None:
        G = self.G
        pos = sk.pos
        if pos >= self.rend:
            sk.term = (_P_EXHAUSTED, pos)
            return
        fpc = G.pRFPC[pos]
        cl = self.camlock
        if (fpc == cl) if cl is not None else (fpc in self.campcs):
            self.camlock = fpc
            sk.term = (_P_CFM, pos)
            return
        b = G.pRECBLK[pos]
        nr = G.pNROWS[b]
        extra = G.pREXTRA[pos]
        l0 = G.pRL0[pos]
        s0 = G.pRS0[pos]
        ghr = sk.ghr
        if G.pTERM[b] == TERM_BR:
            hist = ghr
            idx = G.pPCT[b]
            out = G._scalar_predict(self._wrow(idx), hist)
            prd = out >= 0
            actual = bool(G.pRTAKEN[pos])
            ismisp = prd != actual
            ghr = ((hist << 1) | (1 if prd else 0)) & _M31
            wrow = self._train(idx, hist, out, prd, actual)
            jidx = (G.pJPC[b] ^ (hist & _JHMASK)) & (_JTAB - 1)
            jnew = self._jrs(jidx, ismisp)
            site = G.pSITE[b]
            if ismisp:
                ghr = ((hist << 1) | (1 if actual else 0)) & _M31
                newsite = False
            elif prd:
                newsite = self._btb_new(site)
            else:
                newsite = False
            sk.steps.append((
                3, b, nr, extra, l0, s0, G.pNBODY[b], G.pBRSRC[b],
                G.pBRLAT[b], wrow, idx, jidx, jnew, prd, ismisp,
                site, newsite,
            ))
        else:
            term = G.pTERM[b]
            if term == TERM_RET:
                sk.steps.append((1, b, nr, extra, l0, s0,
                                 G.pRUNDER[pos]))
            elif term == TERM_NONE:
                sk.steps.append((0, b, nr, extra, l0, s0))
            else:  # JMP / CALL
                site = G.pSITE[b]
                sk.steps.append((2, b, nr, extra, l0, s0, site,
                                 self._btb_new(site)))
        sk.cum.append((sk.cum[-1] if sk.cum else 0) + nr)
        sk.ghr_after.append(ghr)
        sk.ghr = ghr
        sk.wset.update(G.pDESTS[b])
        sk.pos = pos + 1

    def _extend_static(self, sk: _StaticSkel) -> None:
        G = self.G
        cur = sk.cur
        if cur < 0:
            sk.term = _P_EXHAUSTED
            return
        fpc = G.pFPC[cur]
        cl = self.camlock
        if (fpc == cl) if cl is not None else (fpc in self.campcs):
            self.camlock = fpc
            sk.term = _P_CFM
            return
        nr = G.pNROWS[cur]
        term = G.pTERM[cur]
        ghr = sk.ghr
        bump = False
        if term == TERM_BR:
            out = G._scalar_predict(self._wrow(G.pPCT[cur]), ghr)
            prd = out >= 0
            ghr = ((ghr << 1) | (1 if prd else 0)) & _M31
            if prd:
                bump = True  # taken ends the cycle
                nxt = G.pTAKEN[cur]
            else:
                nxt = G.pFALL[cur]
        elif term == TERM_NONE:
            nxt = G.pFALL[cur]
        else:
            bump = True  # jmp/call/ret redirect
            if term == TERM_JMP:
                nxt = G.pTARGET[cur]
            elif term == TERM_CALL:
                fall = G.pFALL[cur]
                if fall >= 0:
                    sk.local.append(fall)
                nxt = G.pCALLEE[cur]
            else:  # TERM_RET
                if sk.local:
                    nxt = sk.local.pop()
                elif sk.node >= 0:
                    nxt = G.pNODERET[sk.node]
                    sk.node = G.pNODEPAR[sk.node]
                else:
                    nxt = -1
        sk.steps.append((cur, nr, bump))
        sk.cum.append((sk.cum[-1] if sk.cum else 0) + nr)
        sk.ghr_after.append(ghr)
        sk.ghr = ghr
        sk.wset.update(G.pDESTS[cur])
        sk.cur = nxt

    # -- per-lane timing replay ----------------------------------------

    def _replay_trace(self, sk: _TraceSkel, st: _EpState, res: int,
                      pid: int, limit: int, srd, spr, spidd):
        """Walk the shared trace skeleton with one lane's timing state.
        Mirrors ``_ep_trace_path``'s per-record check order: trace end /
        CAM hit (terminal, unconditional), then resolution, then the
        path-length limit."""
        G = self.G
        steps = sk.steps
        cum = sk.cum
        ghr_after = sk.ghr_after
        epfns = G._epfns
        lfwd = G.pLFWD
        llat = G.pLLAT
        ep_adv = G._ep_adv
        k = 0
        while True:
            if k == len(steps):
                if sk.term is None:
                    self._extend_trace(sk)
                if sk.term is not None and k == len(steps):
                    st.ghr = ghr_after[k - 1] if k else sk.ghr0
                    return sk.term
            if st.cycle >= res:
                st.ghr = ghr_after[k - 1] if k else sk.ghr0
                return _P_RESOLVED, sk.pos0 + k
            if cum[k] > limit:
                st.ghr = ghr_after[k - 1] if k else sk.ghr0
                return _P_LIMIT, sk.pos0 + k
            step = steps[k]
            kind = step[0]
            extra = step[3]
            if extra > 0:
                ep_adv(st, st.cycle + extra)
            if kind == 3:
                (_, b, nr, _x, l0, s0, nbody, brsrcs, brlat, wrow,
                 widx, jidx, jnew, prd, ismisp, site, newsite) = step
                if nbody:
                    fn = epfns.get(b)
                    if fn is None:
                        fn = epfns[b] = _compile_row_loop(
                            G.pROWS[b], nbody, "ep"
                        )
                    fn(st, l0, s0, res, pid, srd, spr, spidd,
                       lfwd, llat)
                    st.fc += nbody
                    st.ex += nbody
                # Nested branch: fetch-slot + window check, sources,
                # retire — then the *shared* predictor transitions,
                # scattered to this lane.
                seq = st.seq
                rob = st.rob
                if seq >= rob:
                    j = seq - rob
                    sq0 = st.seq0
                    oldest = (
                        st.wr[j - sq0] if j >= sq0
                        else st.ring[j % rob]
                    )
                    if st.cycle < oldest:
                        ep_adv(st, oldest)
                if st.slots <= 0 or st.bl <= 0:
                    ep_adv(st, None)
                st.slots -= 1
                st.bl -= 1
                st.fc += 1
                base = st.cycle + st.depth
                for s_ in brsrcs:
                    v = st.rr[s_]
                    if v > base:
                        base = v
                comp = base + brlat
                rc = comp + 1
                if rc < st.last:
                    rc = st.last
                if rc == st.last:
                    if st.cnt >= st.rw:
                        rc += 1
                        st.cnt = 0
                else:
                    st.cnt = 0
                st.last = rc
                st.cnt += 1
                st.wr.append(rc)
                st.seq = seq + 1
                st.ex += 1
                st.rb += 1
                if wrow is not None:
                    G.W[st.ci, widx] = wrow
                G.JRS[st.ci][jidx] = jnew
                if ismisp:
                    st.mp += 1
                    st.fl += 1
                    ep_adv(st, comp + 1)
                elif prd:
                    if newsite:
                        G.BTBSEEN[st.ci, site] = True
                        ep_adv(st, None)
                    if st.stops:
                        ep_adv(st, None)
            else:
                b = step[1]
                nr = step[2]
                if nr:
                    fn = epfns.get(b)
                    if fn is None:
                        fn = epfns[b] = _compile_row_loop(
                            G.pROWS[b], nr, "ep"
                        )
                    fn(st, step[4], step[5], res, pid, srd, spr,
                       spidd, lfwd, llat)
                    st.fc += nr
                    st.ex += nr
                if kind == 1:  # RET
                    ep_adv(st, None)
                    if step[6]:
                        ep_adv(st, st.cycle + st.depth)
                elif kind == 2:  # JMP / CALL redirect
                    if step[7]:
                        G.BTBSEEN[st.ci, step[6]] = True
                        ep_adv(st, None)
                    if st.stops:
                        ep_adv(st, None)
            k += 1

    def _replay_static(self, sk: _StaticSkel, st: _EpState, res: int,
                       limit: int) -> int:
        """Walk the shared static skeleton with one lane's timing state
        (``_ep_static_path``'s check order, sequence number frozen)."""
        G = self.G
        steps = sk.steps
        cum = sk.cum
        ghr_after = sk.ghr_after
        stfns = G._stfns
        ep_adv = G._ep_adv
        k = 0
        while True:
            if k == len(steps):
                if sk.term is None:
                    self._extend_static(sk)
                if sk.term is not None and k == len(steps):
                    st.ghr = ghr_after[k - 1] if k else sk.ghr0
                    return sk.term
            if st.cycle >= res:
                st.ghr = ghr_after[k - 1] if k else sk.ghr0
                return _P_RESOLVED
            if cum[k] > limit:
                st.ghr = ghr_after[k - 1] if k else sk.ghr0
                return _P_LIMIT
            cur, nr, bump = steps[k]
            if nr:
                fn = stfns.get(cur)
                if fn is None:
                    fn = stfns[cur] = _compile_static_block(
                        G.pROWS[cur], G.pTERM[cur] == TERM_BR
                    )
                seq = st.seq
                if seq >= st.rob:
                    j = seq - st.rob
                    sq0 = st.seq0
                    oldest = (
                        st.wr[j - sq0] if j >= sq0
                        else st.ring[j % st.rob]
                    )
                else:
                    oldest = 0
                fn(st, oldest)
                st.cd += nr
                st.ex += nr
                st.pf += nr
            if bump:
                ep_adv(st, None)
            k += 1

    # -- one lane, full episode ----------------------------------------

    def run_lane(self, lane):
        """Exact per-lane transcription of ``_dpred_epilogue`` with the
        structural work served by the shared skeletons."""
        (ci, cur, b, fetchc, sbr, bbr, res, snap, pred, actual, dual,
         seq1) = lane
        G = self.G
        st = _EpState()
        st.ci = ci
        st.cycle = fetchc
        st.slots = sbr
        st.bl = bbr
        st.du = dual
        st.w = G.pwidth[ci]
        st.hw = G.phalfw[ci]
        st.mb = G.pmaxb[ci]
        st.depth = G.pdepth[ci]
        st.rob = G.prob[ci]
        st.rw = G.prw[ci]
        st.stops = G.pstops[ci]
        st.rr = G.RR[ci].tolist()
        st.ring = G.RING[ci]
        st.wr = []
        st.last = int(G.last[ci])
        st.cnt = int(G.cnt[ci])
        st.seq = st.seq0 = seq1
        st.written = st.campcs = st.camlock = None  # skeleton-owned
        st.fc = st.ex = st.rb = st.mp = st.fl = 0
        st.cd = st.pf = st.lw = 0

        G.DPE[ci] += 1
        p1 = G.pcnt[ci]
        p2 = p1 + 1
        G.pcnt[ci] = p1 + 2
        xu = 1  # enter.pred.path uop (completion discarded)
        nsel = 0
        cp1_ready = list(st.rr)
        misp = self.misp
        limit = G.pplimit[ci]
        srd = G.SREADY[ci]
        spr = G.SPREADYP[ci]
        spidd = G.spid[ci]

        # Predicted path: the shared taken redirect, then the skeleton.
        st.ghr = self.ghr1
        if pred:
            if self.newsite0:
                G.BTBSEEN[ci, self.site0] = True
                G._ep_adv(st, None)
            if st.stops:
                G._ep_adv(st, None)
        if misp:
            pout = self._replay_static(self.pskel, st, res, limit)
            ppos = -1
        else:
            pout, ppos = self._replay_trace(
                self.pskel, st, res, p1, limit, srd, spr, spidd
            )

        if pout != _P_CFM:
            if pout != _P_RESOLVED and st.cycle < res:
                G._ep_adv(st, res)
            if misp:
                ecase = 6  # FLUSH
                st.mp += 1
                st.fl += 1
                st.rr = cp1_ready
                G._ep_adv(st, res + 1)
                ghr_out = ((snap << 1) | (1 if actual else 0)) & _M31
                cont = cur + 1
            else:
                ecase = 5  # CONTINUE_PREDICTED
                ghr_out = st.ghr
                cont = ppos
        else:
            predicted_ghr = st.ghr
            cp2_ready = list(st.rr)
            st.rr = cp1_ready
            xu += 1  # enter.alternate.path
            if self.askel is None:
                if misp:
                    self.askel = _TraceSkel(cur + 1, self.ghr2)
                else:
                    start = G.pFALL[b] if pred else G.pTAKEN[b]
                    self.askel = _StaticSkel(
                        start, self.ghr2, G.pRNODE[ppos]
                    )
            if misp:
                aout, apos = self._replay_trace(
                    self.askel, st, res, p2, limit, srd, spr, spidd
                )
            else:
                aout = self._replay_static(self.askel, st, res, limit)
                apos = -1
            if aout == _P_CFM:
                xu += 1  # exit.pred
                if self.selects is None:
                    # Both skeletons are CAM-terminated by the time any
                    # lane reaches the alternate CFM, so the union of
                    # renamed registers over their steps is complete.
                    self.selects = sorted(
                        self.pskel.wset | self.askel.wset
                    )
                selects = self.selects
                rr = st.rr
                cycle_d = st.cycle + st.depth
                for a in selects:
                    sr = cp2_ready[a]
                    v = rr[a]
                    if v > sr:
                        sr = v
                    if res > sr:
                        sr = res
                    rr[a] = (cycle_d if cycle_d > sr else sr) + 1
                nsel = len(selects)
                if G.pghrpred[ci]:
                    ghr_out = predicted_ghr
                else:
                    ghr_out = st.ghr
                if misp:
                    ecase = 2  # NORMAL_MISPREDICTED
                    st.mp += 1  # eliminated: no flush
                    cont = apos
                else:
                    ecase = 1  # NORMAL_CORRECT
                    cont = ppos
            else:
                if st.cycle < res:
                    G._ep_adv(st, res)
                if misp:
                    ecase = 4  # CONTINUE_ALTERNATE
                    st.mp += 1  # eliminated: no flush
                    ghr_out = st.ghr
                    cont = apos
                else:
                    ecase = 3  # REDIRECT_TO_CFM
                    st.rr = cp2_ready
                    ghr_out = predicted_ghr
                    G._ep_adv(st, None)
                    cont = ppos

        return G._ep_finish(
            ci, st, cur, b, pred, actual, snap, ecase, xu, nsel,
            ghr_out, cont,
        )


def run_gangs(G, lanes: List[tuple]) -> List[tuple]:
    """Group one resolution step's dpred lanes by episode signature and
    run each gang's episode once structurally.  ``lanes`` holds the
    scalar ``_dpred_epilogue`` argument tuples; results come back in
    lane order.  Keys are computed up front from the pre-episode epochs
    (each lane's episode only advances its own epoch)."""
    groups: Dict[tuple, List[int]] = {}
    for i, lane in enumerate(lanes):
        ci, cur, b = lane[0], lane[1], lane[2]
        key = (
            G.ptgid[ci], G.pepoch[ci], cur, b, lane[8], lane[9],
            lane[7], G.cfms[ci][b],
        )
        groups.setdefault(key, []).append(i)
    out: List = [None] * len(lanes)
    for idxs in groups.values():
        if len(idxs) == 1:
            i = idxs[0]
            out[i] = G._dpred_epilogue(*lanes[i])
            G.gang_singletons += 1
        else:
            gang = EpisodeGang(G, lanes[idxs[0]])
            for i in idxs:
                out[i] = gang.run_lane(lanes[i])
            G.gang_count += 1
            G.gang_lanes += len(idxs)
            if len(idxs) > G.gang_max:
                G.gang_max = len(idxs)
    return out
