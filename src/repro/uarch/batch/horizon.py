"""Event-driven skip-ahead for the lockstep driver (span macro blocks).

The batch engine's driver advances every live cell by one trace record
per iteration, and each iteration carries a fixed cost (lane sort,
cursor gathers, terminator dispatch, state scatter) on top of the
per-row vector work.  Most records, however, are *quiet*: the record's
block ends in no control transfer (``TERM_NONE``) and the next record
begins with no icache stall (``REXTRA == 0``).  Crossing such a record
boundary is provably the identity on every piece of timing state — the
inter-record driver work is exactly "advance the cursor" — so a run of
quiet records can be fetched as one **span macro block** whose rows are
the concatenation of the constituent blocks' rows, advancing the
horizon to the next *event* (a branch, a jump/call/return redirect, an
icache stall, a trace end) in a single driver iteration.

Identity argument, row by row: within one record the engine replays the
reference's per-row sequence (window stall, slot refill, dependence
wakeup, retirement); between two quiet records nothing happens — no
terminator timing, no icache advance, no cursor-dependent state.  The
sequence numbers, load ordinals and store ordinals of consecutive
records are consecutive (each block contributes its static row/load/
store counts), so the concatenated rows carry exactly the per-row
constants the separate fetches would have used.  The committed
differential suite (bit-identical ``SimStats`` against the reference
engine) is the guard.

Spans are defined from **every** record index, not as a partition: a
dpred episode can return the cursor to any record (its continuation
lands wherever the predicated path stopped), and the suffix of a quiet
run is itself a quiet run.  Macro blocks are interned per program by
their block-id tuple — loops make the same sequences recur constantly —
and appended after the program's own blocks in an
:class:`ExtendedArena` view the engine concatenates exactly like a
:class:`~repro.uarch.batch.arena.ProgramArena`.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.uarch.batch.arena import (
    JREG,
    NO_PC,
    ZREG,
    _CLEAR_HOOKS,
    ProgramArena,
    TraceArena,
)
from repro.uarch.plan import TERM_BR, TERM_NONE

#: Row cap per span macro block.  Bounds the rectangular table padding
#: (every block pays ``L`` columns in the 2-D decode tables) and keeps
#: the retirement-ring occupancy fast path (``rob_size >= L``) alive
#: for the default 128-entry ROB.
SPAN_ROW_CAP = 64


class HorizonIndex:
    """Per-program registry of span macro blocks, interned by their
    constituent block-id tuple.  Append-only: macro ``m`` keeps local id
    ``parena.n + m`` for the life of the program arena, so snapshots
    taken by different lockstep groups agree on ids."""

    __slots__ = ("seqs", "_ids", "snapshot", "snap_n", "__weakref__")

    def __init__(self) -> None:
        self.seqs: List[Tuple[int, ...]] = []
        self._ids: Dict[Tuple[int, ...], int] = {}
        self.snapshot: Optional["ExtendedArena"] = None
        self.snap_n = 0

    def intern(self, blocks: Tuple[int, ...]) -> int:
        mid = self._ids.get(blocks)
        if mid is None:
            mid = self._ids[blocks] = len(self.seqs)
            self.seqs.append(blocks)
        return mid


class SpanTables:
    """Per-record span lookup for one trace: ``SPANBLK[r]`` is the
    (local) block to fetch when the cursor sits at record ``r`` — the
    record's own block, or a macro id ``>= parena.n`` — and
    ``SPANLAST[r]`` the index of the span's final record (``r`` itself
    outside any span)."""

    __slots__ = ("SPANBLK", "SPANLAST", "merged_records")

    def __init__(self, spanblk, spanlast, merged_records: int) -> None:
        self.SPANBLK = spanblk
        self.SPANLAST = spanlast
        self.merged_records = merged_records


_INDEXES: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_SPANS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _clear_horizon_caches() -> None:
    _INDEXES.clear()
    _SPANS.clear()


_CLEAR_HOOKS.append(_clear_horizon_caches)


def horizon_index(parena: ProgramArena) -> HorizonIndex:
    index = _INDEXES.get(parena)
    if index is None:
        index = _INDEXES[parena] = HorizonIndex()
    return index


def trace_spans(parena: ProgramArena, tarena: TraceArena) -> SpanTables:
    """Build (or reuse) the span tables for one trace, registering any
    new macro blocks in the program's :class:`HorizonIndex`."""
    hit = _SPANS.get(tarena)
    if hit is not None:
        owner, tables = hit
        if owner() is parena:
            return tables
    index = horizon_index(parena)
    rblk = tarena.RBLK.tolist()
    rex = tarena.REXTRA.tolist()
    nrec = tarena.nrec
    # quiet[r]: the r -> r+1 boundary is mergeable from r's side.
    quiet = (parena.TERM[tarena.RBLK] == TERM_NONE).tolist()
    nrl = parena.NROWS.tolist()
    pn = parena.n
    spanblk = rblk[:]
    spanlast = list(range(nrec))
    merged = 0
    for r in range(nrec):
        if not quiet[r] or r + 1 >= nrec or rex[r + 1]:
            continue
        rows = nrl[rblk[r]]
        end = r
        while (
            end + 1 < nrec and quiet[end] and rex[end + 1] == 0
            and rows + nrl[rblk[end + 1]] <= SPAN_ROW_CAP
        ):
            end += 1
            rows += nrl[rblk[end]]
        if end == r:
            continue  # the row cap refused even the first merge
        spanblk[r] = pn + index.intern(tuple(rblk[r:end + 1]))
        spanlast[r] = end
        merged += end - r
    tables = SpanTables(
        np.asarray(spanblk, np.int64),
        np.asarray(spanlast, np.int64),
        merged,
    )
    _SPANS[tarena] = (weakref.ref(parena), tables)
    return tables


class ExtendedArena:
    """A :class:`ProgramArena`-shaped view of one program's blocks plus
    its span macro blocks (ids ``parena.n ..``).  Macro decode rows are
    the constituent blocks' rows concatenated with cumulatively
    renumbered load/store ordinals; terminator-side tables (successors,
    predictor indices, branch sources, reconvergence) come from the
    final block, the first-PC from the first.  The engine concatenates
    these views exactly like raw arenas."""

    __slots__ = (
        "n", "L", "K", "nsites", "ROWS",
        "NROWS", "NBODY", "FPC", "TERM", "TAKEN", "FALL", "TARGET",
        "CALLEE", "SITE", "PCT", "JPC", "BRPC", "RECONV", "BRLAT",
        "BRSRC", "RKIND", "RLAT", "RDEST", "RSRC", "RLORD", "RSTORD",
    )

    def __init__(self, pa: ProgramArena,
                 seqs: List[Tuple[int, ...]]) -> None:
        i8 = np.int64
        nm = len(seqs)
        n = pa.n + nm
        self.n = n
        self.K = pa.K
        self.nsites = pa.nsites

        rows_list: List[Tuple[Tuple, ...]] = []
        maxrows = pa.L
        for blocks in seqs:
            rows: List[Tuple] = []
            lo = so = 0
            for b in blocks:
                for (kind, lat, lat1, dest, srcs, lord, stord) in (
                    pa.ROWS[b]
                ):
                    rows.append((
                        kind, lat, lat1, dest, srcs,
                        lord + lo if lord >= 0 else -1,
                        stord + so if stord >= 0 else -1,
                    ))
                lo += pa.LOADS[b]
                so += pa.STORES[b]
            rows_list.append(tuple(rows))
            if len(rows) > maxrows:
                maxrows = len(rows)
        L = maxrows
        self.L = L
        self.ROWS = list(pa.ROWS) + rows_list

        def ext1(src, fill=0):
            out = np.full(n, fill, i8)
            out[:pa.n] = src
            return out

        self.NROWS = ext1(pa.NROWS)
        self.NBODY = ext1(pa.NBODY)
        self.FPC = ext1(pa.FPC, NO_PC)
        self.TERM = ext1(pa.TERM)
        self.TAKEN = ext1(pa.TAKEN, -1)
        self.FALL = ext1(pa.FALL, -1)
        self.TARGET = ext1(pa.TARGET, -1)
        self.CALLEE = ext1(pa.CALLEE, -1)
        self.SITE = ext1(pa.SITE, -1)
        self.PCT = ext1(pa.PCT)
        self.JPC = ext1(pa.JPC)
        self.BRPC = ext1(pa.BRPC, -1)
        self.RECONV = ext1(pa.RECONV, -1)
        self.BRLAT = ext1(pa.BRLAT)
        self.BRSRC = np.full((n, pa.K), ZREG, i8)
        self.BRSRC[:pa.n] = pa.BRSRC
        self.RKIND = np.zeros((n, L), i8)
        self.RLAT = np.zeros((n, L), i8)
        self.RDEST = np.full((n, L), JREG, i8)
        self.RSRC = np.full((n, L, pa.K), ZREG, i8)
        self.RLORD = np.full((n, L), -1, i8)
        self.RSTORD = np.full((n, L), -1, i8)
        self.RKIND[:pa.n, :pa.L] = pa.RKIND
        self.RLAT[:pa.n, :pa.L] = pa.RLAT
        self.RDEST[:pa.n, :pa.L] = pa.RDEST
        self.RSRC[:pa.n, :pa.L, :] = pa.RSRC
        self.RLORD[:pa.n, :pa.L] = pa.RLORD
        self.RSTORD[:pa.n, :pa.L] = pa.RSTORD

        for m, blocks in enumerate(seqs):
            gb = pa.n + m
            last = blocks[-1]
            rows = rows_list[m]
            nr = len(rows)
            term = int(pa.TERM[last])
            self.NROWS[gb] = nr
            self.NBODY[gb] = nr - 1 if term == TERM_BR else nr
            self.FPC[gb] = pa.FPC[blocks[0]]
            self.TERM[gb] = term
            self.TAKEN[gb] = pa.TAKEN[last]
            self.FALL[gb] = pa.FALL[last]
            self.TARGET[gb] = pa.TARGET[last]
            self.CALLEE[gb] = pa.CALLEE[last]
            self.SITE[gb] = pa.SITE[last]
            self.PCT[gb] = pa.PCT[last]
            self.JPC[gb] = pa.JPC[last]
            self.BRPC[gb] = pa.BRPC[last]
            self.RECONV[gb] = pa.RECONV[last]
            self.BRLAT[gb] = pa.BRLAT[last]
            self.BRSRC[gb] = pa.BRSRC[last]
            for i, (kind, lat, _lat1, dest, srcs, lord, stord) in (
                enumerate(rows)
            ):
                self.RKIND[gb, i] = kind
                self.RLAT[gb, i] = lat
                if dest >= 0:
                    self.RDEST[gb, i] = dest
                for j, src in enumerate(srcs):
                    self.RSRC[gb, i, j] = src
                if lord >= 0:
                    self.RLORD[gb, i] = lord
                if stord >= 0:
                    self.RSTORD[gb, i] = stord


def extended_arena(parena: ProgramArena):
    """The program's block tables extended with every macro registered
    so far — the raw arena itself when no trace produced any spans.
    Snapshots are reused until new macros appear."""
    index = _INDEXES.get(parena)
    if index is None or not index.seqs:
        return parena
    if index.snapshot is not None and index.snap_n == len(index.seqs):
        return index.snapshot
    ext = ExtendedArena(parena, index.seqs)
    index.snapshot = ext
    index.snap_n = len(index.seqs)
    return ext
