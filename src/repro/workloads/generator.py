"""Gadget-based synthetic program generator.

A workload is a ``main`` loop over ``iterations`` data elements; each
iteration calls a ``body`` function assembled from *gadgets* — small CFG
shapes with known diverge-merge properties:

=============  =========================================================
``split_merge`` a diverge branch whose two sides reconverge at one of TWO
               merge points (chosen by a shared secondary value), with the
               eventual common block pushed beyond the 120-instruction
               CFM cap: the basic single-CFM machine merges only half the
               time, the multiple-CFM machine (Section 2.7.1) always
``if``         simple hammock (if): DHP- and DMP-predicable
``ifelse``     simple hammock (if-else): DHP- and DMP-predicable
``nested``     the paper's Figure 3 shape, with a rare early *return*
               (so the CFM point is NOT the immediate post-dominator):
               complex diverge branch, DMP-only
``ifelse_call`` hammock with a function call inside one arm: complex
               diverge branch, DMP-only
``no_merge``   paths reconverge beyond the 120-instruction cap: a
               mispredicting branch neither mechanism can help ("other")
``loop``       data-dependent inner loop (1–4 trips)
``mem``        dependent load/store into a configurable footprint
``fp``         floating-point dependency chain (no branch)
=============  =========================================================

Every branching gadget draws its branch value from a private seeded data
array (see :mod:`repro.workloads.behaviors`), so branch predictability is
an explicit per-gadget knob.

Register conventions: ``r3`` is the loop index, ``r2`` unused spare,
``r4``–``r7`` per-gadget data values, ``r10``–``r15`` scratch,
``r26``–``r28`` live accumulators (they carry cross-iteration
dependencies, so predicated paths produce real data-flow merges).
"""

from __future__ import annotations

import dataclasses
import zlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cfg.builder import BlockHandle, CFGBuilder
from repro.isa.instructions import Condition
from repro.program.interpreter import Interpreter
from repro.program.memory import Memory
from repro.program.program import Program
from repro.program.trace import Trace
from repro.workloads import behaviors

_DATA_BASE = 1_000_000
_HEAP_BASE = 50_000_000

_GADGET_KINDS = (
    "if",
    "ifelse",
    "nested",
    "ifelse_call",
    "no_merge",
    "split_merge",
    "loop",
    "mem",
    "fp",
)


@dataclasses.dataclass
class GadgetSpec:
    """One gadget instance within a workload body."""

    kind: str
    #: Behaviour of the primary branch-value array:
    #: ("uniform",) | ("biased", p) | ("periodic", pattern, noise)
    data: Tuple = ("uniform",)
    threshold: int = 128
    #: Filler ALU instructions per arm.
    work: int = 3
    #: Early-return probability for the ``nested`` gadget.
    rare_fraction: float = 0.03
    #: Behaviour of the ``nested`` gadget's *inner* branch (block B); the
    #: default keeps it just below the diverge-selection rate floor.
    inner_data: Tuple = ("periodic", (40, 200, 90, 180), 0.08)
    #: Instructions on the long arm of ``no_merge`` (must exceed the
    #: 120-instruction CFM cap for the gadget to stay un-predicable).
    long_work: int = 140
    #: Word footprint of the ``mem`` gadget.
    footprint: int = 1 << 15
    #: Access pattern for ``mem``: "chase" (random) or "stride".
    access: str = "chase"

    def __post_init__(self) -> None:
        if self.kind not in _GADGET_KINDS:
            raise ValueError(f"unknown gadget kind {self.kind!r}")


@dataclasses.dataclass
class WorkloadSpec:
    """A complete synthetic benchmark definition."""

    name: str
    iterations: int
    gadgets: List[GadgetSpec]
    seed: int = 0
    #: Work instructions in the shared helper called by ``ifelse_call``.
    helper_work: int = 6

    def scaled(self, iterations: int) -> "WorkloadSpec":
        """The same workload at a different trace length (for tests)."""
        return dataclasses.replace(self, iterations=iterations)


class Workload:
    """A built workload: sealed program + initialized memory."""

    def __init__(self, spec: WorkloadSpec, program: Program, memory: Memory):
        self.spec = spec
        self.program = program
        self.memory = memory

    @property
    def name(self) -> str:
        return self.spec.name

    def run(self, max_instructions: int = 50_000_000) -> Trace:
        """Execute functionally and return the dynamic trace.

        Memory is copied first so a workload can be run repeatedly."""
        memory = Memory()
        memory._words = dict(self.memory._words)
        interp = Interpreter(
            self.program, memory=memory, max_instructions=max_instructions
        )
        return interp.run()


class _ArrayAllocator:
    """Lays the per-gadget data arrays into memory."""

    def __init__(self, memory: Memory, base: int = _DATA_BASE) -> None:
        self.memory = memory
        self.next_base = base

    def allocate(self, values: Sequence[int]) -> int:
        base = self.next_base
        self.memory.fill_array(base, values)
        self.next_base = base + len(values) + 64  # pad between arrays
        return base


def _materialize(
    data: Tuple, length: int, seed: int
) -> List[int]:
    kind = data[0]
    if kind == "uniform":
        return behaviors.uniform(length, seed)
    if kind == "biased":
        return behaviors.biased(length, seed, taken_fraction=data[1])
    if kind == "periodic":
        noise = data[2] if len(data) > 2 else 0.1
        return behaviors.noisy_periodic(length, seed, data[1], noise=noise)
    raise ValueError(f"unknown data behaviour {data!r}")


def _emit_work(block: BlockHandle, count: int, salt: int) -> None:
    """Filler ALU work: four independent short chains over r13..r16
    (ILP ≈ 4), restarted from the data value at each call so dependence
    chains stay *local* to the emitting block — real code's dataflow is
    flat, and a globally threaded accumulator would put every dynamic
    predication data-merge on the program's critical path.

    Uses only r13–r16 scratch so gadget control registers (r10/r11 for
    loop bounds, r4–r7 for branch values) are never clobbered."""
    chains = (13, 14, 15, 16)
    started = set()
    for i in range(count):
        step = salt + i
        reg = chains[step % 4]
        if reg not in started:
            started.add(reg)
            block.addi(reg, 4, (step * 7 + 3) & 0xFF)  # fresh chain head
        elif step % 2 == 0:
            block.addi(reg, reg, (step * 7 + 3) & 0xFF)
        else:
            block.xor(reg, reg, 4)


class _WorkloadBuilder:
    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec
        self.memory = Memory()
        self.arrays = _ArrayAllocator(self.memory)
        self.body = CFGBuilder("body")
        self._gadget_index = 0
        self._needs_helper = False

    # -- data -------------------------------------------------------------

    def _seed(self, *salt) -> int:
        tag = ":".join(str(part) for part in
                       (self.spec.seed, self.spec.name) + salt)
        return zlib.crc32(tag.encode())

    def _array_for(self, data: Tuple, salt: int) -> int:
        return self.arrays.allocate(
            _materialize(data, self.spec.iterations, self._seed(salt))
        )

    # -- gadget emitters ------------------------------------------------------

    def emit_gadget(self, gadget: GadgetSpec) -> None:
        index = self._gadget_index
        self._gadget_index += 1
        emitter = getattr(self, f"_emit_{gadget.kind}")
        emitter(gadget, f"g{index}", index)

    def _load_value(
        self, block: BlockHandle, reg: int, data: Tuple, salt: int
    ) -> None:
        base = self._array_for(data, salt)
        block.load(reg, 3, offset=base)

    def _emit_if(self, g: GadgetSpec, p: str, index: int) -> None:
        entry = self.body.block(f"{p}_A")
        self._load_value(entry, 4, g.data, index * 16)
        entry.br(Condition.GE, 4, imm=g.threshold, taken=f"{p}_M")
        body = self.body.block(f"{p}_B")
        _emit_work(body, g.work, index)
        merge = self.body.block(f"{p}_M")
        merge.add(27, 13, 14)

    def _emit_ifelse(self, g: GadgetSpec, p: str, index: int) -> None:
        entry = self.body.block(f"{p}_A")
        self._load_value(entry, 4, g.data, index * 16)
        entry.br(Condition.GE, 4, imm=g.threshold, taken=f"{p}_E")
        then = self.body.block(f"{p}_T")
        _emit_work(then, g.work, index)
        then.addi(28, 26, 1)
        then.jmp(f"{p}_M")
        els = self.body.block(f"{p}_E")
        _emit_work(els, g.work, index + 1)
        els.addi(28, 26, 2)
        merge = self.body.block(f"{p}_M")
        merge.add(27, 28, 14)

    def _emit_nested(self, g: GadgetSpec, p: str, index: int) -> None:
        """The paper's Figure 3 control-flow graph (with early return)."""
        a = self.body.block(f"{p}_A")
        self._load_value(a, 4, g.data, index * 16)
        self._load_value(a, 5, g.inner_data, index * 16 + 1)
        self._load_value(a, 6, ("periodic", (220, 30, 170, 60, 110), 0.06),
                         index * 16 + 2)
        self._load_value(a, 7, ("biased", g.rare_fraction), index * 16 + 3)
        a.br(Condition.LT, 4, imm=g.threshold, taken=f"{p}_C")
        b = self.body.block(f"{p}_B")
        _emit_work(b, g.work, index)
        b.br(Condition.LT, 5, imm=128, taken=f"{p}_E")
        d = self.body.block(f"{p}_D")
        _emit_work(d, g.work, index + 1)
        d.br(Condition.LT, 6, imm=128, taken=f"{p}_E")
        f = self.body.block(f"{p}_F")
        _emit_work(f, g.work, index + 2)
        f.addi(28, 26, 3)
        f.jmp(f"{p}_G")
        r = self.body.block(f"{p}_R")  # rare early return
        r.addi(27, 28, 7)
        r.ret()
        e = self.body.block(f"{p}_E")
        _emit_work(e, g.work, index + 3)
        e.addi(28, 26, 4)
        e.jmp(f"{p}_H")
        c = self.body.block(f"{p}_C")
        _emit_work(c, g.work, index + 4)
        c.addi(28, 26, 5)
        c.br(Condition.LT, 7, imm=128, taken=f"{p}_R")
        ch = self.body.block(f"{p}_CH")
        ch.jmp(f"{p}_H")
        gblk = self.body.block(f"{p}_G")
        _emit_work(gblk, g.work, index + 5)
        h = self.body.block(f"{p}_H")  # the CFM point
        h.add(27, 28, 13)

    def _emit_ifelse_call(self, g: GadgetSpec, p: str, index: int) -> None:
        self._needs_helper = True
        entry = self.body.block(f"{p}_A")
        self._load_value(entry, 4, g.data, index * 16)
        entry.br(Condition.GE, 4, imm=g.threshold, taken=f"{p}_E")
        then = self.body.block(f"{p}_T")
        _emit_work(then, g.work, index)
        then.call("helper")
        tc = self.body.block(f"{p}_TC")
        tc.jmp(f"{p}_M")
        els = self.body.block(f"{p}_E")
        _emit_work(els, g.work, index + 1)
        els.addi(28, 26, 2)
        merge = self.body.block(f"{p}_M")
        merge.add(27, 28, 13)

    def _emit_no_merge(self, g: GadgetSpec, p: str, index: int) -> None:
        entry = self.body.block(f"{p}_A")
        self._load_value(entry, 4, g.data, index * 16)
        entry.br(Condition.LT, 4, imm=g.threshold, taken=f"{p}_LONG")
        short = self.body.block(f"{p}_SHORT", fallthrough=f"{p}_M")
        _emit_work(short, g.work, index)
        long_side = self.body.block(f"{p}_LONG")
        _emit_work(long_side, g.long_work, index + 1)
        long_side.jmp(f"{p}_M")
        merge = self.body.block(f"{p}_M")
        merge.add(27, 13, 14)

    def _emit_split_merge(self, g: GadgetSpec, p: str, index: int) -> None:
        """Diverge branch with two alternative merge points.

        Both sides of the branch re-branch on the *same* secondary value
        r5, so each dynamic instance reconverges at M1 or at M2 — but
        never predictably at one of them.  The common continuation AFTER
        sits past the CFM distance cap (``long_work`` filler in M1/M2), so
        the profiler emits M1 and M2 as the only usable CFM points."""
        a = self.body.block(f"{p}_A")
        self._load_value(a, 4, g.data, index * 16)
        self._load_value(a, 5, g.inner_data, index * 16 + 1)
        a.br(Condition.LT, 4, imm=g.threshold, taken=f"{p}_C")
        b = self.body.block(f"{p}_B")
        _emit_work(b, g.work, index)
        b.br(Condition.LT, 5, imm=128, taken=f"{p}_M2")
        bj = self.body.block(f"{p}_BJ")
        bj.jmp(f"{p}_M1")
        c = self.body.block(f"{p}_C")
        _emit_work(c, g.work, index + 1)
        c.br(Condition.LT, 5, imm=128, taken=f"{p}_M2")
        cj = self.body.block(f"{p}_CJ")
        cj.jmp(f"{p}_M1")
        m1 = self.body.block(f"{p}_M1")
        _emit_work(m1, g.long_work, index + 2)
        m1.jmp(f"{p}_AFTER")
        m2 = self.body.block(f"{p}_M2")
        _emit_work(m2, g.long_work, index + 3)
        after = self.body.block(f"{p}_AFTER")
        after.add(27, 13, 14)

    def _emit_loop(self, g: GadgetSpec, p: str, index: int) -> None:
        entry = self.body.block(f"{p}_A")
        self._load_value(entry, 4, g.data, index * 16)
        entry.andi(10, 4, 3)
        entry.addi(10, 10, 1)  # 1..4 trips
        entry.movi(11, 0)
        head = self.body.block(f"{p}_H")
        head.br(Condition.GE, 11, 10, taken=f"{p}_X")
        body = self.body.block(f"{p}_B")
        _emit_work(body, g.work, index)
        body.addi(11, 11, 1)
        body.jmp(f"{p}_H")
        exit_block = self.body.block(f"{p}_X")
        exit_block.add(27, 13, 14)

    def _emit_mem(self, g: GadgetSpec, p: str, index: int) -> None:
        seed = self._seed("mem", index)
        if g.access == "chase":
            indices = behaviors.pointer_chase_indices(
                self.spec.iterations, seed, g.footprint
            )
        else:
            indices = behaviors.strided_indices(
                self.spec.iterations, stride=3, footprint=g.footprint
            )
        index_base = self.arrays.allocate(indices)
        block = self.body.block(f"{p}_A")
        block.load(12, 3, offset=index_base)  # idx = indices[i]
        block.load(15, 12, offset=_HEAP_BASE)  # value = heap[idx]
        block.add(27, 15, 3)
        _emit_work(block, g.work, index)
        block.store(27, 12, offset=_HEAP_BASE)

    def _emit_fp(self, g: GadgetSpec, p: str, index: int) -> None:
        block = self.body.block(f"{p}_A")
        self._load_value(block, 4, g.data, index * 16)
        block.fadd(20, 26, 4)
        block.fmul(21, 20, 4)
        block.fdiv(22, 21, 4)
        block.add(27, 22, 4)
        _emit_work(block, g.work, index)

    # -- assembly ----------------------------------------------------------

    def build(self) -> Workload:
        spec = self.spec
        for gadget in spec.gadgets:
            self.emit_gadget(gadget)
        end = self.body.block("body_end")
        end.add(28, 27, 13)
        end.ret()

        main = CFGBuilder("main")
        init = main.block("init")
        init.movi(3, 0)
        init.movi(26, 1)
        init.movi(27, 0)
        init.movi(28, 0)
        head = main.block("head")
        head.br(Condition.GE, 3, imm=spec.iterations, taken="exit")
        call = main.block("call_body")
        call.call("body")
        step = main.block("step")
        step.addi(3, 3, 1)
        step.jmp("head")
        main.block("exit").halt()

        program = Program(spec.name)
        program.add_function(main.build())
        program.add_function(self.body.build())
        if self._needs_helper:
            helper = CFGBuilder("helper")
            h = helper.block("h_entry")
            _emit_work(h, spec.helper_work, 99)
            h.add(27, 13, 14)
            h.ret()
            program.add_function(helper.build())
        program.seal()
        return Workload(spec, program, self.memory)


def build_workload(spec: WorkloadSpec) -> Workload:
    """Build (program + memory) for a workload specification."""
    if not spec.gadgets:
        raise ValueError("workload needs at least one gadget")
    if spec.iterations <= 0:
        raise ValueError("iterations must be positive")
    return _WorkloadBuilder(spec).build()
