"""The 15 named synthetic benchmarks.

One workload per benchmark the paper evaluates (12 SPEC-int, 3 SPEC-fp).
Each recipe composes gadgets so that the benchmark's *relevant* published
characteristics carry over:

* which benchmarks are misprediction-bound and which are not (Table 3);
* whether the mispredicting branches are simple hammocks, complex diverge
  branches, or un-predicable "other" branches (Figure 6) — e.g. ``mcf``
  is hammock-heavy, ``gcc``'s mispredictions mostly come from control
  flow with no usable CFM point, ``parser``/``vpr``/``twolf``/``bzip2``
  are complex-diverge-heavy;
* whether the benchmark is memory-bound (``mcf``, ``ammp``) or
  fetch/compute-bound.

Absolute instruction counts are scaled down (the paper runs hundreds of
millions of instructions; we default to a few hundred thousand) — the
harness treats iteration count as a free parameter.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.workloads.generator import (
    GadgetSpec,
    Workload,
    WorkloadSpec,
    build_workload,
)

INT_BENCHMARKS: Tuple[str, ...] = (
    "bzip2",
    "crafty",
    "eon",
    "gap",
    "gcc",
    "gzip",
    "mcf",
    "parser",
    "perlbmk",
    "twolf",
    "vortex",
    "vpr",
)

FP_BENCHMARKS: Tuple[str, ...] = ("mesa", "ammp", "fma3d")

BENCHMARK_NAMES: Tuple[str, ...] = INT_BENCHMARKS + FP_BENCHMARKS

_DEFAULT_ITERATIONS = 4000

# Shorthand data behaviours.  "Hard" branches mix a learnable pattern with
# heavy noise: history predictors reach ~75-85%% accuracy on them, like the
# hard branches of real integer codes; pure ("uniform",) coin flips are
# reserved for the worst offenders.
_COIN = ("uniform",)
_HARD = ("periodic", (30, 200, 70, 190, 110, 240, 20, 160), 0.28)
_MED = ("periodic", (30, 200, 70, 190, 110, 240), 0.15)
_SOFT = ("periodic", (60, 160, 220, 40), 0.06)
_EASY = ("biased", 0.97)
_MOSTLY = ("biased", 0.9)
_PAT_A = _MED
_PAT_B = ("periodic", (60, 160, 220, 40), 0.18)
_PAT_EASY = ("periodic", (20, 30, 25, 220), 0.02)
#: Skewed-but-hard outer branch paired with a very hard inner branch:
#: the multiple-diverge-branch scenario of Section 2.7.3.
_SKEW = ("biased", 0.15)
_INNER_HARD = ("periodic", (200, 40, 170, 90), 0.45)

#: Easy, instruction-dense gadgets appended to every benchmark: real codes
#: are mostly well-predicted straight-ish code, which dilutes the hard
#: branches to realistic MPKI levels.
_DILUTION = (
    GadgetSpec("if", data=_EASY, work=24),
    GadgetSpec("ifelse", data=_PAT_EASY, work=20),
    GadgetSpec("if", data=("biased", 0.99), work=18),
)


def _gadgets_for(name: str) -> Tuple[GadgetSpec, ...]:
    recipes: Dict[str, Tuple[GadgetSpec, ...]] = {
        # High-misprediction, complex-diverge-heavy (the big DMP winners).
        "bzip2": (
            GadgetSpec("split_merge", data=_COIN, work=8, long_work=130,
                       inner_data=("periodic", (30, 220), 0.02)),
            GadgetSpec("nested", data=_COIN, work=10),
            GadgetSpec("nested", data=_SKEW, work=10,
                       inner_data=_INNER_HARD),
            GadgetSpec("ifelse", data=_HARD, work=8),
            GadgetSpec("loop", data=_PAT_B, work=4),
            GadgetSpec("mem", access="stride", work=4),
        ),
        "parser": (
            GadgetSpec("nested", data=_COIN, work=10),
            GadgetSpec("nested", data=_SKEW, work=10,
                       inner_data=_INNER_HARD),
            GadgetSpec("ifelse", data=_HARD, work=6),
            GadgetSpec("ifelse_call", data=_PAT_B, work=6),
            GadgetSpec("loop", data=_PAT_B, work=4),
        ),
        "twolf": (
            GadgetSpec("split_merge", data=_HARD, work=8, long_work=130,
                       inner_data=("periodic", (220, 30, 30, 220), 0.02)),
            GadgetSpec("nested", data=_COIN, work=10),
            GadgetSpec("nested", data=_SKEW, work=10,
                       inner_data=_INNER_HARD),
            GadgetSpec("ifelse", data=_PAT_A, work=6),
            GadgetSpec("loop", data=_PAT_B, work=4),
        ),
        "vpr": (
            GadgetSpec("nested", data=_SKEW, work=8,
                       inner_data=_INNER_HARD),
            GadgetSpec("if", data=_HARD, work=8),
            GadgetSpec("ifelse", data=_HARD, work=6),
            GadgetSpec("loop", data=_PAT_B, work=4),
        ),
        # Moderate mispredictions.
        "crafty": (
            GadgetSpec("nested", data=_MED, work=8),
            GadgetSpec("ifelse", data=_MOSTLY, work=10),
            GadgetSpec("if", data=_EASY, work=8),
            GadgetSpec("ifelse_call", data=_PAT_EASY, work=6),
            GadgetSpec("loop", data=_PAT_B, work=4),
        ),
        "gzip": (
            GadgetSpec("ifelse", data=_HARD, work=8),
            GadgetSpec("nested", data=_MED, work=8),
            GadgetSpec("loop", data=_PAT_B, work=4),
            GadgetSpec("mem", access="stride", work=4),
        ),
        # gcc: mispredictions dominated by branches with no usable CFM.
        "gcc": (
            GadgetSpec("no_merge", data=_COIN, work=6, long_work=150),
            GadgetSpec("no_merge", data=_HARD, work=6, long_work=160),
            GadgetSpec("nested", data=_PAT_A, work=6, rare_fraction=0.45),
            GadgetSpec("ifelse", data=_EASY, work=8),
        ),
        # gap: diverge regions that often fail to merge (case-3 trouble).
        "gap": (
            GadgetSpec("nested", data=("periodic", (60, 160, 220, 40), 0.03),
                       inner_data=("periodic", (40, 200, 90, 180), 0.04),
                       work=8, rare_fraction=0.20),
            GadgetSpec("ifelse", data=_EASY, work=16),
            GadgetSpec("if", data=_EASY, work=16),
            GadgetSpec("mem", access="stride", work=4),
        ),
        # mcf: hammock-heavy and memory-bound.
        "mcf": (
            GadgetSpec("if", data=_COIN, work=6),
            GadgetSpec("ifelse", data=_COIN, work=6),
            GadgetSpec("mem", access="chase", footprint=1 << 18, work=4),
            GadgetSpec("loop", data=_PAT_B, work=4),
        ),
        # Well-predicted benchmarks.
        "eon": (
            GadgetSpec("if", data=_EASY, work=10),
            GadgetSpec("ifelse", data=_EASY, work=10),
            GadgetSpec("ifelse_call", data=_PAT_EASY, work=8),
            GadgetSpec("mem", access="stride", work=6),
        ),
        "perlbmk": (
            GadgetSpec("if", data=("biased", 0.99), work=16),
            GadgetSpec("ifelse", data=_PAT_EASY, work=12),
            GadgetSpec("mem", access="stride", work=6),
        ),
        "vortex": (
            GadgetSpec("if", data=_EASY, work=10),
            GadgetSpec("ifelse_call", data=_EASY, work=8),
            GadgetSpec("ifelse", data=_PAT_EASY, work=10),
            GadgetSpec("mem", access="stride", work=6),
        ),
        # Floating point.
        "mesa": (
            GadgetSpec("fp", data=_PAT_EASY, work=10),
            GadgetSpec("nested", data=_SOFT, work=8),
            GadgetSpec("if", data=_EASY, work=10),
        ),
        "ammp": (
            GadgetSpec("fp", data=_PAT_EASY, work=10),
            GadgetSpec("mem", access="chase", footprint=1 << 17, work=6),
            GadgetSpec("if", data=("biased", 0.99), work=12),
        ),
        "fma3d": (
            GadgetSpec("fp", data=_PAT_EASY, work=10),
            GadgetSpec("split_merge", data=_MED, work=8, long_work=130,
                       inner_data=("periodic", (30, 220, 220), 0.02)),
            GadgetSpec("nested", data=_MED, work=10),
            GadgetSpec("ifelse", data=_SOFT, work=8),
        ),
    }
    return recipes[name] + _DILUTION


def benchmark_spec(
    name: str, iterations: Optional[int] = None, seed: int = 0
) -> WorkloadSpec:
    """The workload specification for one named benchmark."""
    if name not in BENCHMARK_NAMES:
        raise ValueError(
            f"unknown benchmark {name!r}; choose from {BENCHMARK_NAMES}"
        )
    return WorkloadSpec(
        name=name,
        iterations=iterations or _DEFAULT_ITERATIONS,
        gadgets=list(_gadgets_for(name)),
        seed=seed,
    )


def build_benchmark(
    name: str, iterations: Optional[int] = None, seed: int = 0
) -> Workload:
    """Build (program + data memory) for one named benchmark."""
    return build_workload(benchmark_spec(name, iterations, seed))
