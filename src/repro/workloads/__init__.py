"""Synthetic SPEC-CPU2000-like workloads.

The paper evaluates on 12 SPEC-int and 3 SPEC-fp benchmarks, which are not
redistributable (and their Alpha binaries would need a full ISA
front end anyway).  This package synthesizes one workload per paper
benchmark: real mini-ISA programs whose control-flow *shapes* (simple
hammocks, Figure 3-style complex diverge regions, non-merging branches,
data-dependent loops, calls with early returns) and branch
*predictability* (driven by seeded data arrays mixing periodic patterns
with noise) are tuned per benchmark to echo the published Table 3
characteristics — see DESIGN.md for the substitution argument.

* :mod:`repro.workloads.behaviors` — deterministic data-array generators
  that control how predictable each branch is;
* :mod:`repro.workloads.generator` — the gadget-based program generator;
* :mod:`repro.workloads.suite` — the 15 named benchmarks.
"""

from repro.workloads.behaviors import (
    biased,
    noisy_periodic,
    pointer_chase_indices,
    uniform,
)
from repro.workloads.generator import (
    GadgetSpec,
    WorkloadSpec,
    Workload,
    build_workload,
)
from repro.workloads.suite import (
    BENCHMARK_NAMES,
    FP_BENCHMARKS,
    INT_BENCHMARKS,
    benchmark_spec,
    build_benchmark,
)

__all__ = [
    "biased",
    "noisy_periodic",
    "pointer_chase_indices",
    "uniform",
    "GadgetSpec",
    "WorkloadSpec",
    "Workload",
    "build_workload",
    "BENCHMARK_NAMES",
    "FP_BENCHMARKS",
    "INT_BENCHMARKS",
    "benchmark_spec",
    "build_benchmark",
]
