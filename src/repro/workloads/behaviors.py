"""Deterministic data-array generators controlling branch predictability.

Workload branches test *loaded data* against thresholds, so the entropy of
these arrays is exactly the entropy of the branches.  All generators are
seeded and pure, so a benchmark is bit-reproducible.

The useful mental model, for an array of values in ``[0, bound)`` tested
with ``value < bound/2``:

* :func:`uniform` — a coin flip per instance: a hard branch no predictor
  can beat;
* :func:`noisy_periodic` — a repeating pattern with probability
  ``1 - noise`` and a uniform draw with probability ``noise``: history
  predictors learn the pattern and mispredict roughly ``noise/2`` of the
  time, mimicking real hard-ish branches;
* :func:`biased` — almost always on one side: the easy branches that
  dominate real programs.
"""

from __future__ import annotations

import random
from typing import List, Sequence


def uniform(length: int, seed: int, bound: int = 256) -> List[int]:
    """Independent uniform values in ``[0, bound)``."""
    rng = random.Random(seed)
    return [rng.randrange(bound) for _ in range(length)]


def biased(
    length: int, seed: int, taken_fraction: float, bound: int = 256
) -> List[int]:
    """Values below ``bound/2`` with probability ``taken_fraction``.

    Tested with ``value < bound/2`` this gives a branch taken with that
    probability (and predictable to roughly ``max(p, 1-p)`` accuracy).
    """
    if not 0.0 <= taken_fraction <= 1.0:
        raise ValueError("taken_fraction must be within [0, 1]")
    rng = random.Random(seed)
    half = bound // 2
    return [
        rng.randrange(half)
        if rng.random() < taken_fraction
        else half + rng.randrange(bound - half)
        for _ in range(length)
    ]


def noisy_periodic(
    length: int,
    seed: int,
    pattern: Sequence[int],
    noise: float = 0.1,
    bound: int = 256,
) -> List[int]:
    """A repeating pattern corrupted by uniform noise.

    With ``noise=0`` the branch outcome sequence is exactly periodic and a
    history predictor learns it perfectly; each extra point of noise adds
    roughly half a point of misprediction.
    """
    if not pattern:
        raise ValueError("pattern must be non-empty")
    if not 0.0 <= noise <= 1.0:
        raise ValueError("noise must be within [0, 1]")
    rng = random.Random(seed)
    out = []
    for i in range(length):
        if rng.random() < noise:
            out.append(rng.randrange(bound))
        else:
            out.append(pattern[i % len(pattern)] % bound)
    return out


def pointer_chase_indices(
    length: int, seed: int, footprint: int
) -> List[int]:
    """A random permutation walk over ``footprint`` slots.

    Used as load indices to defeat caches (the mcf-like benchmarks): every
    access lands on a pseudo-random slot of a working set much larger than
    the L1/L2, giving the low-IPC, memory-bound behaviour of Table 3.
    """
    rng = random.Random(seed)
    return [rng.randrange(footprint) for _ in range(length)]


def strided_indices(length: int, stride: int, footprint: int) -> List[int]:
    """Cache-friendly strided indices (the high-IPC benchmarks)."""
    return [(i * stride) % footprint for i in range(length)]
