"""Static detection of simple hammocks (the DHP-predicable shapes).

Dynamic Hammock Predication (Klauser et al.) can only predicate *simple
hammock* branches: ``if`` or ``if-else`` structures with no other control
flow inside.  Concretely, a branch ending block ``A`` with taken successor
``T`` and fall-through successor ``F`` is a simple hammock when either:

* **if-else**: ``T`` and ``F`` are straight-line blocks (no conditional
  branch, call or return inside) whose single successor is the same merge
  block ``M``; or
* **if**: one of ``T``/``F`` *is* the merge block ``M`` and the other is a
  straight-line block whose single successor is ``M``.

The resulting :class:`~repro.isa.encoding.HintTable` marks the merge block
as the (single) CFM point, which for these shapes coincides with the
immediate post-dominator.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.cfg.graph import BasicBlock, ControlFlowGraph
from repro.isa.encoding import DivergeHint, HintTable
from repro.isa.instructions import Opcode
from repro.program.program import Program


def _is_straight_line_side(block: BasicBlock) -> bool:
    """A hammock side may contain no control flow other than an optional
    terminating JMP to the merge point."""
    for instr in block.instructions[:-1]:
        if instr.is_control:
            return False
    term = block.terminator
    return term is None or term.opcode == Opcode.JMP


def _single_successor(block: BasicBlock) -> Optional[str]:
    succs = block.successors()
    return succs[0] if len(succs) == 1 else None


def classify_hammock(
    cfg: ControlFlowGraph, block_name: str
) -> Optional[str]:
    """If the branch ending ``block_name`` forms a simple hammock, return
    the merge block's name; otherwise None."""
    block = cfg.block(block_name)
    if not block.ends_in_branch:
        return None
    taken_name, fall_name = block.successors()
    taken = cfg.block(taken_name)
    fall = cfg.block(fall_name)
    # if-else shape
    if _is_straight_line_side(taken) and _is_straight_line_side(fall):
        taken_merge = _single_successor(taken)
        fall_merge = _single_successor(fall)
        if (
            taken_merge is not None
            and taken_merge == fall_merge
            and taken_merge not in (taken_name, fall_name, block_name)
        ):
            return taken_merge
    # if shape: one side is the merge itself
    for side, merge_candidate in ((taken, fall_name), (fall, taken_name)):
        if side.name == merge_candidate:
            continue
        if (
            _is_straight_line_side(side)
            and _single_successor(side) == merge_candidate
            and merge_candidate != block_name
        ):
            return merge_candidate
    return None


def find_simple_hammocks(
    program: Program,
    min_mispredictions: int = 0,
    profile=None,
    min_misprediction_rate: float = 0.0,
) -> HintTable:
    """Build a DHP hint table from every simple hammock in the program.

    When a :class:`~repro.profiling.profiler.ProgramProfile` is supplied,
    only branches with at least ``min_mispredictions`` profiled
    mispredictions and at least ``min_misprediction_rate`` are marked
    (DHP, like DMP, targets the branches worth predicating)."""
    table = HintTable()
    for cfg in program.functions():
        for block_name, instr in cfg.conditional_branches():
            merge = classify_hammock(cfg, block_name)
            if merge is None:
                continue
            if profile is not None:
                stats = profile.branches.get(instr.pc)
                if stats is None or stats.mispredictions < min_mispredictions:
                    continue
                if stats.misprediction_rate < min_misprediction_rate:
                    continue
            merge_pc = cfg.block(merge).first_pc
            table.add(instr.pc, DivergeHint((merge_pc,)))
    return table


def hammock_branch_pcs(program: Program) -> Tuple[int, ...]:
    """PCs of every simple-hammock branch (used by the Figure 6 analysis)."""
    pcs = []
    for cfg in program.functions():
        for block_name, instr in cfg.conditional_branches():
            if classify_hammock(cfg, block_name) is not None:
                pcs.append(instr.pc)
    return tuple(pcs)
