"""Profile-free (static) diverge-branch selection.

Section 2.3 of the paper notes that "frequently executed path information
can be collected by profiling **or compiler heuristics**".  This module is
the heuristics-only path: no trace, no second profile run — just static
CFG analysis:

* every conditional branch whose **immediate post-dominator** exists and
  lies within the CFM distance cap (shortest-path dynamic instructions on
  both sides) is marked, with the post-dominator as the single CFM point;
* loop-exit branches are excluded (the mainline machine does not
  predicate loop iterations).

Static selection marks *more* branches than profiling (it cannot see
which ones mispredict) and its CFM points are the conservative
post-dominators rather than the nearer frequent-path merge points — the
two costs the paper's profile-guided approach exists to avoid.  The
``static-vs-profile`` ablation bench quantifies the difference.
"""

from __future__ import annotations

from typing import Optional

from repro.cfg.dominators import immediate_postdominators
from repro.cfg.graph import ControlFlowGraph
from repro.cfg.loops import loop_exit_branches
from repro.cfg.paths import reachable_within
from repro.isa.encoding import DivergeHint, HintTable
from repro.profiling.profiler import ProgramProfile
from repro.program.program import Program


def _static_distance(
    cfg: ControlFlowGraph, source: str, target: str, cap: int
) -> Optional[int]:
    """Shortest dynamic-instruction distance from ``source``'s successors'
    start to ``target``'s first instruction, or None beyond the cap."""
    distances = reachable_within(cfg, source, cap)
    value = distances.get(target)
    if value is None:
        return None
    # reachable_within counts from source's first instruction; the branch
    # sits at the end of the source block, so subtract its body.
    return max(value - len(cfg.block(source)), 0)


def select_diverge_branches_static(
    program: Program,
    max_cfm_distance: int = 120,
    profile: Optional[ProgramProfile] = None,
    min_misprediction_rate: float = 0.0,
) -> HintTable:
    """Mark every suitably-shaped branch with its post-dominator as CFM.

    An optional profile restores the hard-to-predict filter (a hybrid
    static-CFM / profiled-hotness mode); without it, selection is fully
    static and the hardware's confidence estimator is the only filter.
    """
    table = HintTable()
    for cfg in program.functions():
        ipostdom = immediate_postdominators(cfg)
        loop_exits = {block for block, _, _ in loop_exit_branches(cfg)}
        for block_name, instr in cfg.conditional_branches():
            if block_name in loop_exits:
                continue
            merge = ipostdom.get(block_name)
            if merge is None:
                continue  # paths never reconverge (e.g., one side returns)
            distance = _static_distance(
                cfg, block_name, merge, cap=max_cfm_distance * 2
            )
            if distance is None or distance > max_cfm_distance:
                continue
            if profile is not None:
                stats = profile.branches.get(instr.pc)
                if stats is None:
                    continue
                if stats.misprediction_rate < min_misprediction_rate:
                    continue
            merge_pc = cfg.block(merge).first_pc
            table.add(
                instr.pc,
                DivergeHint(
                    (merge_pc,),
                    early_exit_threshold=max(2 * distance, 8),
                ),
            )
    return table
