"""The compiler side of the diverge-merge processor.

The paper's compiler identifies diverge branches and their CFM points from
two profile runs (Section 3.2).  This package reproduces that pipeline:

* :mod:`repro.profiling.profiler` — replay the functional trace to collect
  edge profiles and per-branch misprediction counts (profile run 1), and
  the per-branch reconvergence statistics (profile run 2);
* :mod:`repro.profiling.hammock` — static detection of *simple hammocks*
  (if / if-else with no other control flow inside), the only shapes DHP
  can predicate;
* :mod:`repro.profiling.diverge_selection` — the paper's selection
  heuristics (0.1% of total mispredictions; CFM point on both paths for at
  least 20% of dynamic instances; at most 120 dynamic instructions away),
  producing the :class:`~repro.isa.encoding.HintTable` the hardware
  consumes.
"""

from repro.profiling.profiler import (
    BranchStats,
    ProgramProfile,
    ReconvergenceStats,
    collect_reconvergence,
    profile_trace,
)
from repro.profiling.hammock import find_simple_hammocks
from repro.profiling.diverge_selection import (
    SelectionThresholds,
    candidate_branch_pcs,
    select_diverge_branches,
    build_hint_table,
)
from repro.profiling.loop_selection import (
    find_loop_exit_branches,
    merge_hint_tables,
    select_diverge_loop_branches,
)
from repro.profiling.static_selection import select_diverge_branches_static
from repro.profiling.dynamic_reconvergence import (
    DynamicReconvergencePredictor,
    learn_hints_from_trace,
)

__all__ = [
    "BranchStats",
    "ProgramProfile",
    "ReconvergenceStats",
    "collect_reconvergence",
    "profile_trace",
    "find_simple_hammocks",
    "SelectionThresholds",
    "candidate_branch_pcs",
    "select_diverge_branches",
    "build_hint_table",
    "find_loop_exit_branches",
    "merge_hint_tables",
    "select_diverge_loop_branches",
    "select_diverge_branches_static",
    "DynamicReconvergencePredictor",
    "learn_hints_from_trace",
]
