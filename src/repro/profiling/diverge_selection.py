"""Diverge-branch and CFM-point selection (Section 3.2 of the paper).

The paper's heuristics, verbatim:

* a branch is a *diverge branch candidate* if it causes at least 0.1% of
  the program's total mispredictions;
* a PC is a *CFM point* for a candidate if it shows up as a reconvergence
  point on **both** paths of the branch for at least 20% of its dynamic
  instances, within 120 dynamic instructions of the branch;
* candidates with no qualifying CFM point are dropped;
* the basic machine gets only the most frequent CFM point; the enhanced
  multiple-CFM machine gets all qualifying points.

We additionally compute a per-branch early-exit threshold for the
Section 2.7.2 enhancement (the compiler-selected variant the paper says
works slightly better than a static threshold): twice the mean dynamic
distance to the chosen CFM point.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.isa.encoding import DivergeHint, HintTable
from repro.profiling.profiler import (
    ProgramProfile,
    ReconvergenceStats,
)


@dataclasses.dataclass(frozen=True)
class SelectionThresholds:
    """Knobs of the Section 3.2 heuristics (defaults are the paper's)."""

    #: Minimum share of total mispredictions to become a candidate.
    min_misprediction_share: float = 0.001
    #: Minimum per-branch misprediction *rate*.  The paper's share filter
    #: alone assumes SPEC-scale misprediction counts; at synthetic scale it
    #: would mark every branch ever mispredicted, so easy branches would
    #: pay predication overhead.  A rate floor keeps "diverge branch"
    #: meaning *hard-to-predict* branch.
    min_misprediction_rate: float = 0.08
    #: Minimum dynamic executions before a branch is considered (noise floor).
    min_executions: int = 32
    #: Minimum fraction of dynamic instances reaching the CFM point, per
    #: branch direction.
    min_reconvergence_fraction: float = 0.20
    #: Maximum dynamic distance (instructions) from branch to CFM point.
    max_cfm_distance: int = 120
    #: How many CFM points the enhanced machine may carry per branch.
    max_cfm_points: int = 4
    #: Early-exit threshold = this factor times the mean CFM distance.
    early_exit_distance_factor: float = 1.5


@dataclasses.dataclass
class CfmCandidate:
    pc: int
    fraction_taken: float
    fraction_not_taken: float
    mean_distance: float

    @property
    def score(self) -> float:
        """Ranking score: how reliably both paths merge here."""
        return min(self.fraction_taken, self.fraction_not_taken)


@dataclasses.dataclass
class DivergeBranchSelection:
    pc: int
    mispredictions: int
    cfm_points: List[CfmCandidate]

    @property
    def primary(self) -> CfmCandidate:
        return self.cfm_points[0]


def candidate_branch_pcs(
    profile: ProgramProfile,
    thresholds: SelectionThresholds = SelectionThresholds(),
) -> Tuple[int, ...]:
    """Diverge-branch candidates: the 0.1%-of-mispredictions filter."""
    total = profile.total_mispredictions
    if total == 0:
        return ()
    cutoff = thresholds.min_misprediction_share * total
    return tuple(
        stats.pc
        for stats in profile.mispredicting_branches()
        if stats.mispredictions >= cutoff
        and stats.executions >= thresholds.min_executions
        and stats.misprediction_rate >= thresholds.min_misprediction_rate
    )


def qualifying_cfm_points(
    recon: ReconvergenceStats,
    thresholds: SelectionThresholds,
) -> List[CfmCandidate]:
    """CFM candidates for one branch, best first."""
    out = []
    for pc in recon.common_pcs():
        frac_t = recon.fraction(True, pc)
        frac_nt = recon.fraction(False, pc)
        if (
            frac_t < thresholds.min_reconvergence_fraction
            or frac_nt < thresholds.min_reconvergence_fraction
        ):
            continue
        mean_distance = max(
            recon.mean_distance(True, pc), recon.mean_distance(False, pc)
        )
        if mean_distance > thresholds.max_cfm_distance:
            continue
        out.append(CfmCandidate(pc, frac_t, frac_nt, mean_distance))
    # Most reliable merge first; break ties toward the nearest point.
    out.sort(key=lambda c: (-c.score, c.mean_distance, c.pc))
    return out[: thresholds.max_cfm_points]


def select_diverge_branches(
    profile: ProgramProfile,
    reconvergence: Dict[int, ReconvergenceStats],
    thresholds: SelectionThresholds = SelectionThresholds(),
) -> List[DivergeBranchSelection]:
    """Apply the full Section 3.2 pipeline; returns selections sorted by
    misprediction count (worst branch first)."""
    selections = []
    for pc in candidate_branch_pcs(profile, thresholds):
        recon = reconvergence.get(pc)
        if recon is None:
            continue
        cfm_points = qualifying_cfm_points(recon, thresholds)
        if not cfm_points:
            continue
        selections.append(
            DivergeBranchSelection(
                pc, profile.branches[pc].mispredictions, cfm_points
            )
        )
    return selections


def build_hint_table(
    selections: List[DivergeBranchSelection],
    thresholds: SelectionThresholds = SelectionThresholds(),
    multiple_cfm: bool = True,
) -> HintTable:
    """Turn selections into the ISA-level hint table.

    ``multiple_cfm=False`` keeps only the primary CFM point (the basic
    machine ignores the extras anyway, but a binary for the basic machine
    would only encode one)."""
    table = HintTable()
    for selection in selections:
        points = selection.cfm_points if multiple_cfm else [selection.primary]
        early_exit = int(
            thresholds.early_exit_distance_factor
            * selection.primary.mean_distance
        ) + 8
        table.add(
            selection.pc,
            DivergeHint(
                tuple(candidate.pc for candidate in points),
                early_exit_threshold=max(early_exit, 8),
            ),
        )
    return table
