"""Trace-driven profiling: edge counts, branch behaviour, reconvergence.

Two passes mirror the paper's two profile runs:

1. :func:`profile_trace` replays the functional trace once, accumulating
   CFG edge counts and per-branch statistics.  Branch mispredictions are
   measured by running a software model of the baseline predictor over the
   trace (the paper profiles on the train input with the real predictor).
2. :func:`collect_reconvergence` replays the trace again, tracking — for
   each candidate branch — which block-start PCs appear within the next
   *N* dynamic instructions after taken and after not-taken instances.
   A PC seen on **both** sides frequently enough is a CFM candidate.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Tuple

from repro.branch import make_predictor
from repro.cfg.paths import EdgeProfile
from repro.program.program import Program
from repro.program.trace import Trace


class BranchStats:
    """Profile of one static conditional branch."""

    __slots__ = (
        "pc",
        "function",
        "block",
        "executions",
        "taken",
        "mispredictions",
    )

    def __init__(self, pc: int, function: str, block: str) -> None:
        self.pc = pc
        self.function = function
        self.block = block
        self.executions = 0
        self.taken = 0
        self.mispredictions = 0

    @property
    def taken_rate(self) -> float:
        return self.taken / self.executions if self.executions else 0.0

    @property
    def misprediction_rate(self) -> float:
        if not self.executions:
            return 0.0
        return self.mispredictions / self.executions

    def __repr__(self) -> str:
        return (
            f"<BranchStats {self.pc:#x} {self.function}/{self.block} "
            f"exec={self.executions} misp={self.mispredictions}>"
        )


class ProgramProfile:
    """Everything profile run 1 learns about one program execution."""

    def __init__(self, program_name: str) -> None:
        self.program_name = program_name
        self.edges: Dict[str, EdgeProfile] = {}
        self.branches: Dict[int, BranchStats] = {}
        self.total_instructions = 0
        self.total_mispredictions = 0

    def edge_profile(self, function: str) -> EdgeProfile:
        if function not in self.edges:
            self.edges[function] = EdgeProfile(function)
        return self.edges[function]

    def mispredicting_branches(self) -> List[BranchStats]:
        """Branches sorted by misprediction count, worst first."""
        return sorted(
            (b for b in self.branches.values() if b.mispredictions),
            key=lambda b: b.mispredictions,
            reverse=True,
        )


def profile_trace(
    program: Program,
    trace: Trace,
    predictor_kind: str = "perceptron",
    predictor_args: Optional[dict] = None,
) -> ProgramProfile:
    """Profile run 1: edge counts + per-branch misprediction counts."""
    profile = ProgramProfile(trace.program_name)
    profile.total_instructions = trace.instruction_count
    predictor = make_predictor(predictor_kind, **(predictor_args or {}))
    prev_function: Optional[str] = None
    prev_block = None
    for record in trace:
        block = record.block
        edges = profile.edge_profile(record.function)
        if prev_block is not None and prev_function == record.function:
            edges.record_edge(prev_block.name, block.name)
        else:
            edges.record_entry(block.name)
        if record.taken is not None:
            instr = block.instructions[-1]
            stats = profile.branches.get(instr.pc)
            if stats is None:
                stats = BranchStats(instr.pc, record.function, block.name)
                profile.branches[instr.pc] = stats
            stats.executions += 1
            if record.taken:
                stats.taken += 1
            prediction = predictor.predict(instr.pc)
            predictor.spec_update(prediction.taken)
            predictor.train(prediction, record.taken)
            if prediction.taken != record.taken:
                stats.mispredictions += 1
                profile.total_mispredictions += 1
                predictor.repair(prediction, record.taken)
        prev_function = record.function
        prev_block = block
    return profile


class ReconvergenceStats:
    """Profile run 2's data for one candidate branch.

    For each direction (taken / not-taken) and each block-start PC seen
    within the window: how many dynamic instances saw it, and the summed
    distance (in dynamic instructions) of its first appearance.
    """

    __slots__ = ("pc", "instances", "seen_count", "distance_sum")

    def __init__(self, pc: int) -> None:
        self.pc = pc
        self.instances = [0, 0]  # [not-taken, taken]
        self.seen_count = [defaultdict(int), defaultdict(int)]
        self.distance_sum = [defaultdict(int), defaultdict(int)]

    def record_instance(
        self, taken: bool, first_seen: Dict[int, int]
    ) -> None:
        side = int(taken)
        self.instances[side] += 1
        seen = self.seen_count[side]
        dist = self.distance_sum[side]
        for pc, distance in first_seen.items():
            seen[pc] += 1
            dist[pc] += distance

    def fraction(self, taken: bool, pc: int) -> float:
        side = int(taken)
        if not self.instances[side]:
            return 0.0
        return self.seen_count[side][pc] / self.instances[side]

    def mean_distance(self, taken: bool, pc: int) -> float:
        side = int(taken)
        count = self.seen_count[side][pc]
        if not count:
            return float("inf")
        return self.distance_sum[side][pc] / count

    def common_pcs(self) -> Iterable[int]:
        """PCs observed after both directions at least once."""
        return set(self.seen_count[0]) & set(self.seen_count[1])


class _Window:
    __slots__ = (
        "stats", "taken", "budget", "first_seen", "own_pc", "allow_loop"
    )

    def __init__(self, stats, taken, budget, own_pc, allow_loop=False):
        self.stats = stats
        self.taken = taken
        self.budget = budget
        self.first_seen: Dict[int, int] = {}
        self.own_pc = own_pc
        self.allow_loop = allow_loop


def collect_reconvergence(
    program: Program,
    trace: Trace,
    candidate_pcs: Iterable[int],
    max_distance: int = 120,
    max_instances_per_branch: int = 4000,
    allow_loop_carried: bool = False,
) -> Dict[int, ReconvergenceStats]:
    """Profile run 2: post-branch block-start observation windows.

    For every sampled dynamic instance of a candidate branch, record the
    block-start PCs fetched within the next ``max_distance`` dynamic
    instructions (the paper's CFM distance cap), split by branch direction.

    With ``allow_loop_carried`` the window stays open when the branch's
    own block re-executes — required when hunting CFM points for *diverge
    loop branches* (the Section 2.7.4 extension), whose not-taken side
    reaches the loop exit only by iterating.
    """
    candidates = set(candidate_pcs)
    stats: Dict[int, ReconvergenceStats] = {
        pc: ReconvergenceStats(pc) for pc in candidates
    }
    sampled: Dict[int, int] = {pc: 0 for pc in candidates}
    open_windows: List[_Window] = []
    for record in trace:
        block = record.block
        block_pc = block.first_pc
        size = len(block.instructions)
        if open_windows:
            closed = False
            for window in open_windows:
                if block_pc == window.own_pc and not window.allow_loop:
                    # The branch itself re-executed before reconverging:
                    # any later "merge" would be loop-carried, and the
                    # paper's mainline compiler excludes loop diverge
                    # branches (Section 2.7.4 treats them as future work).
                    window.budget = 0
                else:
                    distance = max_distance - window.budget
                    if block_pc not in window.first_seen:
                        window.first_seen[block_pc] = distance
                    window.budget -= size
                if window.budget <= 0:
                    window.stats.record_instance(
                        window.taken, window.first_seen
                    )
                    closed = True
            if closed:
                open_windows = [w for w in open_windows if w.budget > 0]
        if record.taken is not None:
            pc = block.instructions[-1].pc
            if pc in candidates and sampled[pc] < max_instances_per_branch:
                sampled[pc] += 1
                open_windows.append(
                    _Window(
                        stats[pc],
                        record.taken,
                        max_distance,
                        block_pc,
                        allow_loop=allow_loop_carried,
                    )
                )
    for window in open_windows:  # flush windows cut off by program end
        window.stats.record_instance(window.taken, window.first_seen)
    return stats
