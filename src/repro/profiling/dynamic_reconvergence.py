"""Hardware-style dynamic reconvergence prediction (Collins et al.).

The paper's related work (Section 5.4) notes that Dynamic Reconvergence
Prediction can identify control reconvergence points — "i.e., our CFM
points" — **without compiler support**, and "can be combined with any of
the mechanisms that exploit control-flow independence".  This module
implements that combination: a hardware-plausible online structure that
watches retired control flow and learns each branch's reconvergence PC,
plus a driver that turns what it learned into the same
:class:`~repro.isa.encoding.HintTable` the compiler would have produced —
giving a *hint-free* diverge-merge processor.

The predictor keeps, per static branch, a small candidate table of
block-start PCs seen after both directions; a candidate's confidence rises
when it appears (soon) after an instance and collapses when it doesn't.
This mirrors the original proposal's spirit at the fidelity this
repository needs: what matters downstream is *which* PC it converges to
and how quickly it stabilizes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.isa.encoding import DivergeHint, HintTable
from repro.program.trace import Trace


class _BranchEntry:
    __slots__ = ("seen", "instances", "distance")

    def __init__(self) -> None:
        #: candidate pc -> [count_after_not_taken, count_after_taken]
        self.seen: Dict[int, List[int]] = {}
        self.instances = [0, 0]
        self.distance: Dict[int, int] = {}


class DynamicReconvergencePredictor:
    """Online reconvergence-point learning over the retired stream."""

    def __init__(
        self,
        max_candidates: int = 8,
        window_instructions: int = 120,
        min_instances: int = 16,
        min_fraction: float = 0.7,
    ) -> None:
        self.max_candidates = max_candidates
        self.window_instructions = window_instructions
        self.min_instances = min_instances
        self.min_fraction = min_fraction
        self._entries: Dict[int, _BranchEntry] = {}
        self._open: List[list] = []  # [entry, side, budget, seen_set, own_pc]

    # -- the retired-stream interface ----------------------------------

    def observe_block(self, block_pc: int, block_size: int) -> None:
        """A basic block retired: feed every open observation window."""
        if not self._open:
            return
        still_open = []
        for window in self._open:
            entry, side, budget, seen, own_pc, distance = window
            if block_pc == own_pc:
                self._close(entry, side, seen)
                continue
            if block_pc not in seen:
                seen[block_pc] = distance
            budget -= block_size
            if budget <= 0:
                self._close(entry, side, seen)
                continue
            window[2] = budget
            window[5] = distance + block_size
            still_open.append(window)
        self._open = still_open

    def observe_branch(
        self, pc: int, taken: bool, block_pc: Optional[int] = None
    ) -> None:
        """A conditional branch retired: open its observation window.

        ``block_pc`` is the start PC of the branch's basic block — the
        marker whose re-execution closes the window (a reconvergence only
        counts if it happens before the branch runs again).  It defaults
        to the branch PC itself for callers without block context.
        """
        entry = self._entries.setdefault(pc, _BranchEntry())
        own = block_pc if block_pc is not None else pc
        self._open.append(
            [entry, int(taken), self.window_instructions, {}, own, 0]
        )

    def _close(self, entry: _BranchEntry, side: int, seen: Dict[int, int]) -> None:
        entry.instances[side] += 1
        for pc, distance in seen.items():
            counts = entry.seen.get(pc)
            if counts is None:
                if len(entry.seen) >= self.max_candidates:
                    continue  # table full: drop late arrivals
                counts = [0, 0]
                entry.seen[pc] = counts
                entry.distance[pc] = distance
            counts[side] += 1

    # -- queries -----------------------------------------------------------

    def predict(self, pc: int) -> Optional[int]:
        """The learned reconvergence PC for a branch, or None."""
        entry = self._entries.get(pc)
        if entry is None:
            return None
        if min(entry.instances) < self.min_instances:
            return None
        best = None
        best_distance = None
        for candidate, counts in entry.seen.items():
            frac_nt = counts[0] / entry.instances[0]
            frac_t = counts[1] / entry.instances[1]
            if min(frac_nt, frac_t) < self.min_fraction:
                continue
            distance = entry.distance[candidate]
            if best is None or distance < best_distance:
                best = candidate
                best_distance = distance
        return best

    def trained_branches(self) -> List[int]:
        return sorted(
            pc
            for pc, entry in self._entries.items()
            if min(entry.instances) >= self.min_instances
        )


def learn_hints_from_trace(
    trace: Trace,
    warmup_fraction: float = 0.25,
    predictor: Optional[DynamicReconvergencePredictor] = None,
) -> HintTable:
    """Run the reconvergence predictor over the first part of a trace and
    emit the hint table a compiler-free DMP would operate with.

    ``warmup_fraction`` bounds how much of the run the hardware gets to
    learn from before the hints are "deployed" (the rest of the trace is
    what the timing simulation then measures — in real hardware learning
    continues, so this is conservative).
    """
    predictor = predictor or DynamicReconvergencePredictor()
    limit = int(len(trace.records) * warmup_fraction)
    for record in trace.records[:limit]:
        block = record.block
        predictor.observe_block(block.first_pc, len(block.instructions))
        if record.taken is not None:
            predictor.observe_branch(
                block.instructions[-1].pc, record.taken,
                block_pc=block.first_pc,
            )
    table = HintTable()
    for pc in predictor.trained_branches():
        cfm = predictor.predict(pc)
        if cfm is not None:
            table.add(pc, DivergeHint((cfm,)))
    return table
