"""Diverge *loop* branch selection (the Section 2.7.4 extension).

The paper's mainline compiler only marks forward diverge branches and
explicitly defers hard-to-predict **loop branches** to future work:

    "The diverge-merge processor can distinguish between forward branches
    and backward branches (loop branches) in order to implement the
    dynamic predication of low-confidence loop iterations ... similarly
    to the recently proposed wish loop instructions."

This module implements that compiler side.  A *loop-exit branch* is a
conditional branch with one successor that can re-reach the branch's own
block (the loop side) and one that cannot (the exit side).  For such a
branch the natural CFM point is the exit side's first block: the taken
path reaches it immediately, and the not-taken path reaches it after
iterating — a loop-carried reconvergence the ordinary profile run
deliberately rejects.  Marking these branches with ``is_loop=True``
lets the hardware (with ``MachineConfig.loop_predication``) predicate
the trailing loop iterations instead of flushing on the exit
misprediction, exactly like wish loops.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.cfg.loops import loop_exit_branches
from repro.isa.encoding import DivergeHint, HintTable
from repro.profiling.diverge_selection import (
    SelectionThresholds,
    qualifying_cfm_points,
)
from repro.profiling.profiler import (
    ProgramProfile,
    collect_reconvergence,
)
from repro.program.program import Program
from repro.program.trace import Trace


def find_loop_exit_branches(
    program: Program,
) -> List[Tuple[str, str, int, str]]:
    """Static loop-exit branch discovery.

    Returns ``(function, block, branch_pc, exit_block)`` for every
    conditional branch inside a natural loop with exactly one successor
    outside its innermost loop (see :mod:`repro.cfg.loops`).
    """
    out = []
    for cfg in program.functions():
        for block_name, pc, exit_side in loop_exit_branches(cfg):
            out.append((cfg.name, block_name, pc, exit_side))
    return out


def select_diverge_loop_branches(
    program: Program,
    trace: Trace,
    profile: ProgramProfile,
    thresholds: SelectionThresholds = SelectionThresholds(),
) -> HintTable:
    """Build the ``is_loop`` hint table for hard-to-predict loop exits.

    Applies the same misprediction-rate/execution floors as the forward
    selection, then validates the loop-carried CFM with a reconvergence
    pass whose windows survive the branch's own re-execution.
    """
    loop_exits = find_loop_exit_branches(program)
    candidates: Dict[int, int] = {}
    for function, block, pc, exit_block in loop_exits:
        stats = profile.branches.get(pc)
        if stats is None:
            continue
        if stats.executions < thresholds.min_executions:
            continue
        if stats.misprediction_rate < thresholds.min_misprediction_rate:
            continue
        exit_pc = program.function(function).block(exit_block).first_pc
        candidates[pc] = exit_pc
    if not candidates:
        return HintTable()
    reconvergence = collect_reconvergence(
        program,
        trace,
        candidates,
        max_distance=thresholds.max_cfm_distance,
        allow_loop_carried=True,
    )
    table = HintTable()
    for pc, exit_pc in candidates.items():
        recon = reconvergence.get(pc)
        if recon is None:
            continue
        points = qualifying_cfm_points(recon, thresholds)
        # The exit block must itself qualify as the merge point; other
        # "common" PCs are loop-body blocks of subsequent iterations.
        qualified = [c for c in points if c.pc == exit_pc]
        if not qualified:
            continue
        cfm = qualified[0]
        early_exit = int(
            thresholds.early_exit_distance_factor * cfm.mean_distance
        ) + 8
        table.add(
            pc,
            DivergeHint(
                (exit_pc,),
                early_exit_threshold=max(early_exit, 8),
                is_loop=True,
            ),
        )
    return table


def merge_hint_tables(*tables: HintTable) -> HintTable:
    """Combine forward-diverge and loop-diverge hint tables (first writer
    wins on PC collisions — forward marking takes priority)."""
    merged = HintTable()
    for table in tables:
        for pc, hint in table:
            if pc not in merged:
                merged.add(pc, hint)
    return merged
