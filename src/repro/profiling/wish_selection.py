"""Wish-branch selection (the Section 5.2 comparison point).

Wish branches (Kim et al., MICRO 2005) are the closest prior work the
paper compares against qualitatively: the compiler *if-converts* the code
between a branch and its join point into predicated code, and the
hardware chooses at run time — per dynamic instance — between predicated
execution and normal branch prediction.  The paper lists three advantages
DMP keeps over wish branches:

1. wish branches cannot predicate regions containing **function calls**
   (full if-conversion required);
2. predicated execution fetches **every basic block** between the branch
   and the join point, while DMP fetches only the two predictor-guided
   paths;
3. a wish branch has a **single, statically chosen** join point — the
   immediate post-dominator — where DMP picks frequent-path CFM points
   (and, enhanced, several of them).

This module implements the wish-branch *compiler*: it marks exactly the
branches a real if-converter could handle — an acyclic, call-free,
return-free region from the branch to its immediate post-dominator,
small enough to predicate — so the ``wish`` machine mode
(:class:`repro.uarch.config.MachineConfig`) gives the comparison teeth.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.cfg.dominators import immediate_postdominators
from repro.cfg.graph import BasicBlock, ControlFlowGraph
from repro.isa.encoding import DivergeHint, HintTable
from repro.profiling.profiler import ProgramProfile
from repro.program.program import Program


def wish_region(
    cfg: ControlFlowGraph, block_name: str, merge_name: str
) -> Optional[List[str]]:
    """The blocks strictly between a branch and its join point, or None
    if the region is not if-convertible (contains calls, returns, cycles,
    or escapes the merge)."""
    region: List[str] = []
    seen: Set[str] = set()
    stack = [
        succ
        for succ in cfg.block(block_name).successors()
        if succ != merge_name
    ]
    while stack:
        name = stack.pop()
        if name in seen or name == merge_name:
            continue
        if name == block_name:
            return None  # cyclic region: not if-convertible
        seen.add(name)
        region.append(name)
        block = cfg.block(name)
        if block.ends_in_call or block.ends_in_return or block.ends_in_halt:
            return None  # calls/returns cannot be predicated
        successors = block.successors()
        if not successors:
            return None  # falls off the region without merging
        stack.extend(s for s in successors if s != merge_name)
    return region


def select_wish_branches(
    program: Program,
    max_region_instructions: int = 120,
    profile: Optional[ProgramProfile] = None,
    min_misprediction_rate: float = 0.0,
) -> Tuple[HintTable, Dict[int, List[str]]]:
    """Mark every if-convertible branch as a wish branch.

    Returns the hint table (join point as the single CFM entry) plus the
    per-branch region map the wish machine predicates from.  An optional
    profile applies the same hard-to-predict filter the DMP selection
    uses, for apples-to-apples machine comparisons.
    """
    table = HintTable()
    regions: Dict[int, List[str]] = {}
    for cfg in program.functions():
        ipostdom = immediate_postdominators(cfg)
        for block_name, instr in cfg.conditional_branches():
            merge = ipostdom.get(block_name)
            if merge is None:
                continue
            region = wish_region(cfg, block_name, merge)
            if region is None:
                continue
            size = sum(len(cfg.block(name)) for name in region)
            if size > max_region_instructions:
                continue
            if profile is not None:
                stats = profile.branches.get(instr.pc)
                if stats is None:
                    continue
                if stats.misprediction_rate < min_misprediction_rate:
                    continue
            table.add(
                instr.pc,
                DivergeHint((cfg.block(merge).first_pc,)),
            )
            regions[instr.pc] = region
    return table, regions


def region_instruction_count(
    cfg: ControlFlowGraph, region: List[str]
) -> int:
    return sum(len(cfg.block(name)) for name in region)
