"""Figure 6: classification of mispredicted conditional branches.

Every mispredicted dynamic branch falls into one of three classes:

* **simple hammock diverge** — a diverge branch whose shape is a simple
  hammock (DHP could predicate it too);
* **complex diverge** — a diverge branch with complex control flow
  (only DMP can predicate it);
* **other complex** — a mispredicting branch for which the compiler found
  no usable CFM point (neither mechanism helps).

The paper reports each class in mispredictions per thousand instructions.
"""

from __future__ import annotations

import dataclasses

from repro.isa.encoding import HintTable
from repro.profiling.profiler import ProgramProfile


@dataclasses.dataclass(frozen=True)
class MispredictionClassification:
    benchmark: str
    total_instructions: int
    simple_hammock_diverge: int
    complex_diverge: int
    other: int

    @property
    def total_mispredictions(self) -> int:
        return self.simple_hammock_diverge + self.complex_diverge + self.other

    def _mpki(self, count: int) -> float:
        if not self.total_instructions:
            return 0.0
        return 1000.0 * count / self.total_instructions

    @property
    def mpki_simple_hammock(self) -> float:
        return self._mpki(self.simple_hammock_diverge)

    @property
    def mpki_complex_diverge(self) -> float:
        return self._mpki(self.complex_diverge)

    @property
    def mpki_other(self) -> float:
        return self._mpki(self.other)

    @property
    def diverge_share(self) -> float:
        """Fraction of mispredictions due to diverge branches (simple or
        complex) — the paper reports 57% on average."""
        if not self.total_mispredictions:
            return 0.0
        diverge = self.simple_hammock_diverge + self.complex_diverge
        return diverge / self.total_mispredictions

    @property
    def hammock_share(self) -> float:
        """Fraction due to simple hammocks alone (~9% in the paper)."""
        if not self.total_mispredictions:
            return 0.0
        return self.simple_hammock_diverge / self.total_mispredictions


def classify_mispredictions(
    benchmark: str,
    profile: ProgramProfile,
    diverge_hints: HintTable,
    hammock_hints: HintTable,
) -> MispredictionClassification:
    """Split profiled mispredictions into the three Figure 6 classes."""
    simple = 0
    complex_diverge = 0
    other = 0
    for pc, stats in profile.branches.items():
        if not stats.mispredictions:
            continue
        if diverge_hints.is_diverge_branch(pc):
            if hammock_hints.is_diverge_branch(pc):
                simple += stats.mispredictions
            else:
                complex_diverge += stats.mispredictions
        else:
            other += stats.mispredictions
    return MispredictionClassification(
        benchmark=benchmark,
        total_instructions=profile.total_instructions,
        simple_hammock_diverge=simple,
        complex_diverge=complex_diverge,
        other=other,
    )
