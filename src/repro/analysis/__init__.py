"""Analyses behind Figures 1 and 6.

* :mod:`repro.analysis.wrongpath` — the wrong-path control-independence
  breakdown of Figure 1;
* :mod:`repro.analysis.classify` — the misprediction classification of
  Figure 6 (simple-hammock diverge / complex diverge / other).
"""

from repro.analysis.wrongpath import WrongPathBreakdown, wrong_path_breakdown
from repro.analysis.classify import (
    MispredictionClassification,
    classify_mispredictions,
)

__all__ = [
    "WrongPathBreakdown",
    "wrong_path_breakdown",
    "MispredictionClassification",
    "classify_mispredictions",
]
