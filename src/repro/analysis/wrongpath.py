"""Figure 1: wrong-path instruction breakdown on the baseline machine.

The paper measures, for the baseline processor, what fraction of all
fetched instructions are wrong-path, and how much of the wrong path is
control-*independent* (would be refetched identically after the flush).
The timing model collects both counters during its wrong-path walks; this
module just packages them.
"""

from __future__ import annotations

import dataclasses

from repro.uarch.stats import SimStats


@dataclasses.dataclass(frozen=True)
class WrongPathBreakdown:
    benchmark: str
    fetched_total: int
    wrong_control_dependent: int
    wrong_control_independent: int

    @property
    def pct_wrong(self) -> float:
        if not self.fetched_total:
            return 0.0
        wrong = self.wrong_control_dependent + self.wrong_control_independent
        return 100.0 * wrong / self.fetched_total

    @property
    def pct_wrong_cd(self) -> float:
        if not self.fetched_total:
            return 0.0
        return 100.0 * self.wrong_control_dependent / self.fetched_total

    @property
    def pct_wrong_ci(self) -> float:
        if not self.fetched_total:
            return 0.0
        return 100.0 * self.wrong_control_independent / self.fetched_total

    @property
    def ci_share_of_wrong(self) -> float:
        """Fraction of wrong-path instructions that are control-independent
        (the paper reports ~63% on average)."""
        wrong = self.wrong_control_dependent + self.wrong_control_independent
        if not wrong:
            return 0.0
        return self.wrong_control_independent / wrong


def wrong_path_breakdown(stats: SimStats) -> WrongPathBreakdown:
    """Package a baseline run's fetch counters as the Figure 1 data point."""
    return WrongPathBreakdown(
        benchmark=stats.benchmark,
        fetched_total=stats.fetched_total,
        wrong_control_dependent=stats.fetched_wrong_cd,
        wrong_control_independent=stats.fetched_wrong_ci,
    )
